//! One function per table/figure of the paper's evaluation. Every function is
//! deterministic and returns the rendered rows as a `String`, so the `figures`
//! binary, the integration tests and EXPERIMENTS.md all share the same source
//! of truth.

use std::fmt::Write as _;

use bts_circuit::{
    compile as compile_bytecode, Backend, BootstrapPlan, PassPipeline, TraceBackend, Workload,
};
use bts_ckks::hmult_complexity;
use bts_cluster::{
    serve_cluster, ChipSpec, ClusterOptions, ClusterReport, FaultPlan, Interconnect,
    PlacementPolicy,
};
use bts_params::{min_nttu_count, sweep_dnum, BandwidthModel, CkksInstance, MinBoundModel, L_BOOT};
use bts_sched::{FuKind, ScheduleExt};
use bts_serve::{serve as serve_jobs, JobRequest, QueuePolicy, ServeOptions, SyntheticArrivals};
use bts_sim::{hmult_timeline, ArchPreset, AreaPowerModel, BtsConfig, Simulator};
use bts_workloads::{
    amortized_mult_per_slot, standard_registry, AmortizedMultWorkload, BaselineSet, HelrWorkload,
    ResNetWorkload, SortingWorkload, UNENCRYPTED_HELR_MS, UNENCRYPTED_RESNET_S,
};

use crate::sweep::SweepGrid;

fn header(title: &str) -> String {
    format!("==== {title} ====\n")
}

/// Table 1: platform comparison (N, bootstrappability, refreshed slots, FHE
/// mult throughput). BTS's row is measured with the simulator.
pub fn table1() -> String {
    let mut out = header("Table 1: prior HE acceleration works vs BTS");
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>6} {:>8} {:>16} {:>18}",
        "Platform", "Type", "logN", "Boot", "slots/bootstrap", "mult thruput (1/s)"
    );
    for b in BaselineSet::paper().all() {
        let thruput = b
            .tmult_a_slot_us
            .map(|t| format!("{:.0}", 1.0 / (t * 1e-6)))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>6} {:>8} {:>16} {:>18}",
            b.name,
            b.platform,
            b.log_n,
            if b.bootstrappable { "yes" } else { "limited" },
            b.slots_per_bootstrap
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".to_string()),
            thruput
        );
    }
    let ins = CkksInstance::ins2();
    let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
    let (t, _) = amortized_mult_per_slot(&sim);
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>6} {:>8} {:>16} {:>18.0}",
        "BTS (ours)",
        "ASIC model",
        ins.log_n(),
        "yes",
        ins.slots(),
        1.0 / t
    );
    out
}

/// Fig. 1: maximum level L and single-evk size versus (normalized) dnum for
/// N = 2^15..2^18 at the 128-bit security target.
pub fn fig1() -> String {
    let mut out = header("Fig 1: L and evk size vs dnum (λ ≥ 128)");
    for log_n in [15u32, 16, 17, 18] {
        let points = sweep_dnum(log_n, 128.0, 60, 51);
        let _ = writeln!(out, "N = 2^{log_n} (max dnum = {})", points.len());
        for p in points.iter().step_by((points.len() / 8).max(1)) {
            let _ = writeln!(
                out,
                "  dnum {:>3} (norm {:.2}): L = {:>3}, evk = {:.2} GB",
                p.dnum,
                p.normalized_dnum,
                p.max_level,
                p.evk_bytes as f64 / 1e9
            );
        }
    }
    out
}

/// Fig. 2: security level λ versus the minimum-bound T_mult,a/slot across
/// (N, dnum) combinations at 1 TB/s.
pub fn fig2() -> String {
    let mut out = header("Fig 2: λ vs min-bound T_mult,a/slot (1 TB/s HBM)");
    let plan = BootstrapPlan::paper_default();
    for log_n in [15u32, 16, 17, 18] {
        for dnum in [1usize, 2, 3, 6, 14] {
            let Some(ins) = bts_params::instance_at_security(log_n, dnum, 128.0, 60, 51, 55) else {
                continue;
            };
            if ins.max_level() <= L_BOOT {
                let _ = writeln!(
                    out,
                    "  N=2^{log_n} dnum={dnum}: L={} cannot bootstrap",
                    ins.max_level()
                );
                continue;
            }
            let model = MinBoundModel::new(ins.clone(), BandwidthModel::hbm_1tb());
            let hist = plan.keyswitch_histogram(&ins);
            let t = model.amortized_mult_per_slot_from_trace(&hist);
            let _ = writeln!(
                out,
                "  N=2^{log_n} dnum={dnum}: L={:>3} λ={:>6.1} T_mult,a/slot = {:>8.1} ns",
                ins.max_level(),
                ins.security_level(),
                t * 1e9
            );
        }
    }
    let _ = writeln!(
        out,
        "  (Eq.10 minNTTU for INS-1 at 1.2 GHz / 1 TB/s: {:.0})",
        min_nttu_count(&CkksInstance::ins1(), 1.2e9, BandwidthModel::hbm_1tb())
    );
    out
}

/// Fig. 3(b): relative complexity of BConv/NTT/iNTT/others in HMult for
/// λ-matched instances with different dnum.
pub fn fig3b() -> String {
    let mut out = header("Fig 3b: HMult complexity breakdown vs dnum (N = 2^17)");
    let configs = [
        ("dnum=1 (L=27)", 27usize, 28usize, 1usize),
        ("dnum=2 (L=39)", 39, 20, 2),
        ("dnum=3 (L=44)", 44, 15, 3),
        ("dnum=6 (L=49)", 49, 9, 6),
        ("dnum=max (L=60)", 60, 1, 61),
    ];
    let _ = writeln!(
        out,
        "{:<18} {:>8} {:>8} {:>8} {:>8}",
        "config", "BConv%", "NTT%", "iNTT%", "others%"
    );
    for (name, level, k, dnum) in configs {
        let c = hmult_complexity(1 << 17, level, k, dnum);
        let (bconv, ntt, intt, others) = c.fractions();
        let _ = writeln!(
            out,
            "{:<18} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            name,
            bconv * 100.0,
            ntt * 100.0,
            intt * 100.0,
            others * 100.0
        );
    }
    out
}

/// Table 3: area and peak power of the BTS components.
pub fn table3() -> String {
    let mut out = header("Table 3: area and peak power of BTS components");
    let model = AreaPowerModel::bts_default();
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>10}",
        "Component", "Area (mm²)", "Power (W)"
    );
    for c in model.table3() {
        let _ = writeln!(
            out,
            "{:<22} {:>12.2} {:>10.2}",
            c.name, c.area_mm2, c.power_w
        );
    }
    out
}

/// Table 4: the evaluation CKKS instances.
pub fn table4() -> String {
    let mut out = header("Table 4: CKKS instances used for evaluation");
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>4} {:>5} {:>8} {:>7} {:>12}",
        "Instance", "N", "L", "dnum", "log PQ", "λ", "temp (paper)"
    );
    for ins in CkksInstance::evaluation_set() {
        let _ = writeln!(
            out,
            "{:<8} 2^{:<4} {:>4} {:>5} {:>8.0} {:>7.1} {:>9} MB",
            ins.name(),
            ins.log_n(),
            ins.max_level(),
            ins.dnum(),
            ins.log_pq(),
            ins.security_level(),
            ins.reported_temp_bytes()
                .map(|b| b / 1_000_000)
                .unwrap_or(0),
        );
    }
    out
}

/// Fig. 6: amortized mult time per slot of the baselines and BTS (INS-1/2/3).
pub fn fig6() -> String {
    let mut out = header("Fig 6: T_mult,a/slot — baselines vs BTS");
    let baselines = BaselineSet::paper();
    for b in baselines.all() {
        if let Some(t) = b.tmult_a_slot_us {
            let _ = writeln!(out, "{:<10} {:>12.3} µs", b.name, t);
        }
    }
    let mut best = f64::MAX;
    for ins in CkksInstance::evaluation_set() {
        let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
        let (t, _) = amortized_mult_per_slot(&sim);
        best = best.min(t);
        let _ = writeln!(
            out,
            "BTS {:<6} {:>12.3} µs  ({:.1} ns)",
            ins.name(),
            t * 1e6,
            t * 1e9
        );
    }
    if let Some(lattigo) = baselines.get("Lattigo").and_then(|b| b.tmult_a_slot_us) {
        let _ = writeln!(
            out,
            "speedup of best BTS instance over Lattigo: {:.0}× (paper: 2,237×)",
            lattigo * 1e-6 / best
        );
    }
    out
}

/// Fig. 7(a): minimum-bound vs measured T_mult,a/slot with 512 MiB and 2 GiB
/// scratchpads.
pub fn fig7a() -> String {
    let mut out = header("Fig 7a: T_mult,a/slot — minimum bound vs 512 MiB vs 2 GiB scratchpad");
    let plan = BootstrapPlan::paper_default();
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>14} {:>14}",
        "Instance", "min bound (ns)", "512 MiB (ns)", "2 GiB (ns)"
    );
    for ins in CkksInstance::evaluation_set() {
        let minb = MinBoundModel::new(ins.clone(), BandwidthModel::hbm_1tb())
            .amortized_mult_per_slot_from_trace(&plan.keyswitch_histogram(&ins));
        let t512 =
            amortized_mult_per_slot(&Simulator::new(BtsConfig::bts_default(), ins.clone())).0;
        let t2g = amortized_mult_per_slot(&Simulator::new(
            BtsConfig::bts_default().with_scratchpad_bytes(2 * 1024 * 1024 * 1024),
            ins.clone(),
        ))
        .0;
        let _ = writeln!(
            out,
            "{:<8} {:>14.1} {:>14.1} {:>14.1}",
            ins.name(),
            minb * 1e9,
            t512 * 1e9,
            t2g * 1e9
        );
    }
    out
}

/// Fig. 7(b): fraction of execution time spent bootstrapping per application
/// on INS-1.
pub fn fig7b() -> String {
    let mut out = header("Fig 7b: bootstrapping share of execution time (INS-1)");
    let ins = CkksInstance::ins1();
    let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
    let entries = [
        (
            "Amortized mult",
            AmortizedMultWorkload.lower(&ins).expect("bootstrappable"),
        ),
        ("HELR", HelrWorkload::default().lower(&ins).expect("helr")),
        (
            "ResNet-20",
            ResNetWorkload::default().lower(&ins).expect("resnet"),
        ),
        (
            "Sorting",
            SortingWorkload::default().lower(&ins).expect("sorting"),
        ),
    ];
    for (name, lowered) in entries {
        let report = sim.run(&lowered.trace);
        let _ = writeln!(
            out,
            "{:<16} bootstrapping {:>5.1}% | others {:>5.1}%",
            name,
            report.bootstrap_fraction() * 100.0,
            (1.0 - report.bootstrap_fraction()) * 100.0
        );
    }
    out
}

/// Table 5: HELR training time per iteration, baselines vs BTS.
pub fn table5() -> String {
    let mut out = header("Table 5: HELR logistic-regression training time per iteration");
    let baselines = BaselineSet::paper();
    let lattigo = baselines.get("Lattigo").and_then(|b| b.helr_ms_per_iter);
    for b in baselines.all() {
        if let Some(ms) = b.helr_ms_per_iter {
            let _ = writeln!(
                out,
                "{:<10} {:>10.1} ms/iter  (speedup over Lattigo: {:>6.0}×)",
                b.name,
                ms,
                lattigo.unwrap_or(ms) / ms
            );
        }
    }
    for ins in CkksInstance::evaluation_set() {
        let lowered = HelrWorkload::default().lower(&ins).expect("helr");
        let report = Simulator::new(BtsConfig::bts_default(), ins.clone()).run(&lowered.trace);
        let ms = report.total_seconds * 1e3 / 30.0;
        let _ = writeln!(
            out,
            "BTS {:<6} {:>10.1} ms/iter  (speedup over Lattigo: {:>6.0}×, {} bootstraps)",
            ins.name(),
            ms,
            lattigo.unwrap_or(ms) / ms,
            lowered.bootstrap_count
        );
    }
    out
}

/// Table 6: ResNet-20 and sorting latency plus bootstrap counts.
pub fn table6() -> String {
    let mut out = header("Table 6: ResNet-20 inference and sorting");
    let baselines = BaselineSet::paper();
    let cpu_resnet = baselines
        .get("Lattigo")
        .and_then(|b| b.resnet20_s)
        .unwrap_or(10_602.0);
    let cpu_sort = baselines
        .get("Lattigo")
        .and_then(|b| b.sorting_s)
        .unwrap_or(23_066.0);
    let _ = writeln!(
        out,
        "CPU [59] ResNet-20: {cpu_resnet:.0} s; CPU [42] sorting: {cpu_sort:.0} s"
    );
    for ins in CkksInstance::evaluation_set() {
        let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
        let resnet = ResNetWorkload::default().lower(&ins).expect("resnet");
        let rr = sim.run(&resnet.trace);
        let sort = SortingWorkload::default().lower(&ins).expect("sorting");
        let sr = sim.run(&sort.trace);
        let _ = writeln!(
            out,
            "BTS {:<6} ResNet-20 {:>6.2} s ({:>5.0}×, {:>3} boots) | sorting {:>7.1} s ({:>5.0}×, {:>3} boots)",
            ins.name(),
            rr.total_seconds,
            cpu_resnet / rr.total_seconds,
            resnet.bootstrap_count,
            sr.total_seconds,
            cpu_sort / sr.total_seconds,
            sort.bootstrap_count
        );
    }
    out
}

/// Fig. 8: HMult timeline on INS-1 plus scratchpad statistics.
pub fn fig8() -> String {
    let mut out = header("Fig 8: HMult timeline on INS-1 (top level)");
    let cfg = BtsConfig::bts_default();
    let ins = CkksInstance::ins1();
    for seg in hmult_timeline(&cfg, &ins, ins.max_level()) {
        let _ = writeln!(
            out,
            "{:<16} {:<22} {:>10.1} – {:>10.1} ns",
            seg.unit, seg.label, seg.start_ns, seg.end_ns
        );
    }
    let sim = Simulator::new(cfg, ins.clone());
    let (_, report) = amortized_mult_per_slot(&sim);
    let _ = writeln!(
        out,
        "utilization over the amortized-mult run: NTTU {:.0}%, BConvU {:.0}%, HBM {:.0}%; peak scratchpad demand {} MiB",
        report.ntt_utilization * 100.0,
        report.bconv_utilization * 100.0,
        report.hbm_utilization * 100.0,
        report.scratchpad_peak_bytes / (1024 * 1024)
    );
    out
}

/// Fig. 9: ablation study of T_mult,a/slot.
pub fn fig9() -> String {
    let mut out = header("Fig 9: ablation — cumulative speedup of T_mult,a/slot over Lattigo");
    let lattigo_us = BaselineSet::paper()
        .get("Lattigo")
        .and_then(|b| b.tmult_a_slot_us)
        .unwrap_or(101.8);
    let lattigo = lattigo_us * 1e-6;
    let lattigo_like = CkksInstance::lattigo_preset();
    let ins1 = CkksInstance::ins1();
    let temp = |ins: &CkksInstance| {
        (ins.dnum() as u64 + 2)
            * (ins.num_special() + ins.max_level() + 1) as u64
            * ins.limb_bytes()
    };
    let configs: Vec<(&str, BtsConfig, CkksInstance)> = vec![
        (
            "small BTS (INS-Lattigo)",
            BtsConfig::small_bts(temp(&lattigo_like)),
            lattigo_like.clone(),
        ),
        (
            "small BTS (INS-1)",
            BtsConfig::small_bts(temp(&ins1)),
            ins1.clone(),
        ),
        (
            "BTS w/o BConvU overlap (INS-1)",
            BtsConfig::bts_default().with_overlap(false),
            ins1.clone(),
        ),
        ("BTS (INS-1)", BtsConfig::bts_default(), ins1.clone()),
        (
            "BTS w/ 2 TB/s HBM (INS-1)",
            BtsConfig::bts_default().with_hbm(BandwidthModel::hbm_2tb()),
            ins1,
        ),
    ];
    for (name, cfg, ins) in configs {
        let sim = Simulator::new(cfg, ins);
        let (t, _) = amortized_mult_per_slot(&sim);
        let _ = writeln!(
            out,
            "{:<34} {:>10.2} µs  speedup {:>7.0}×",
            name,
            t * 1e6,
            lattigo / t
        );
    }
    out
}

/// Fig. 10: bootstrapping time breakdown and EDAP versus scratchpad size.
pub fn fig10() -> String {
    let mut out = header("Fig 10: bootstrapping time and EDAP vs scratchpad size (INS-1)");
    let ins = CkksInstance::ins1();
    let trace = BootstrapPlan::paper_default().trace(&ins);
    let _ = writeln!(
        out,
        "{:>10} {:>14} {:>14} {:>16} {:>14}",
        "MiB", "boot time (ms)", "HMult/HRot %", "energy (J)", "EDAP (J·s·mm²)"
    );
    let mut sizes: Vec<u64> = (0..14).map(|i| (192 + 64 * i) * 1024 * 1024).collect();
    sizes.push(1024 * 1024 * 1024);
    sizes.dedup();
    for bytes in sizes {
        let cfg = BtsConfig::bts_default().with_scratchpad_bytes(bytes);
        let report = Simulator::new(cfg, ins.clone()).run(&trace);
        let ks_seconds: f64 = report
            .per_op
            .iter()
            .filter(|(op, _)| op.is_key_switching())
            .map(|(_, s)| s.seconds)
            .sum();
        let _ = writeln!(
            out,
            "{:>10} {:>14.2} {:>13.1}% {:>16.3} {:>14.4}",
            bytes / (1024 * 1024),
            report.total_seconds * 1e3,
            ks_seconds / report.total_seconds * 100.0,
            report.energy_j,
            report.edap()
        );
    }
    out
}

/// §6.3 "Slowdown of FHE": FHE-on-BTS versus unencrypted CPU execution.
pub fn slowdown() -> String {
    let mut out = header("Slowdown of FHE vs unencrypted execution");
    let ins = CkksInstance::ins2();
    let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
    let helr = sim.run(&HelrWorkload::default().lower(&ins).expect("helr").trace);
    let helr_ms = helr.total_seconds * 1e3 / 30.0;
    let _ = writeln!(
        out,
        "HELR: {:.1} ms/iter encrypted vs {:.2} ms unencrypted → {:.0}× slowdown (paper: 141×)",
        helr_ms,
        UNENCRYPTED_HELR_MS,
        helr_ms / UNENCRYPTED_HELR_MS
    );
    let ins1 = CkksInstance::ins1();
    let resnet = Simulator::new(BtsConfig::bts_default(), ins1.clone()).run(
        &ResNetWorkload::default()
            .lower(&ins1)
            .expect("resnet")
            .trace,
    );
    let _ = writeln!(
        out,
        "ResNet-20: {:.2} s encrypted vs {:.4} s unencrypted → {:.0}× slowdown (paper: 440×)",
        resnet.total_seconds,
        UNENCRYPTED_RESNET_S,
        resnet.total_seconds / UNENCRYPTED_RESNET_S
    );
    out
}

/// Per-workload compiler outcome on one instance: the raw builder circuit
/// lowered by the tree-walking oracle versus the same circuit run through
/// [`PassPipeline::standard`], compiled to bytecode, and lowered from there.
struct CompileOutcome {
    workload: String,
    instance: String,
    ops_before: usize,
    ops_after: usize,
    key_switches_before: usize,
    key_switches_after: usize,
    bootstraps_before: usize,
    bootstraps_after: usize,
    registers: u32,
    serial_before: f64,
    serial_after: f64,
}

/// Runs the optimizer + compiler over every registry workload on the given
/// instances and simulates both forms serially at the paper's 1 TB/s design
/// point. Key-switch counts are taken from the lowered traces, so bootstrap
/// expansions are included — removing one refresh shows up as hundreds of
/// key-switches saved, exactly as it does in simulated time.
fn compile_outcomes(instances: &[CkksInstance]) -> Vec<CompileOutcome> {
    let registry = standard_registry();
    let pipeline = PassPipeline::standard();
    let mut out = Vec::new();
    for ins in instances {
        let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
        for (name, workload) in registry.iter() {
            let circuit = workload
                .build(ins)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", ins.name()));
            let optimized = pipeline
                .optimize(&circuit)
                .unwrap_or_else(|e| panic!("pipeline on {name}: {e}"));
            let compiled =
                compile_bytecode(&optimized).unwrap_or_else(|e| panic!("compile {name}: {e}"));
            let before = TraceBackend::new()
                .execute(&circuit)
                .expect("raw circuits lower");
            let after = TraceBackend::new()
                .lower_compiled(&compiled)
                .expect("bytecode lowers");
            let rb = sim.run(&before.trace);
            let ra = sim.run(&after.trace);
            out.push(CompileOutcome {
                workload: name.to_string(),
                instance: ins.name().to_string(),
                ops_before: before.trace.len(),
                ops_after: after.trace.len(),
                key_switches_before: before.trace.key_switch_count(),
                key_switches_after: after.trace.key_switch_count(),
                bootstraps_before: before.bootstrap_count,
                bootstraps_after: after.bootstrap_count,
                registers: compiled.reg_count,
                serial_before: rb.total_seconds,
                serial_after: ra.total_seconds,
            });
        }
    }
    out
}

/// The circuit compiler: per-workload effect of the standard pass pipeline
/// (rotation/square CSE, mask-hoisting rescale scheduling, bootstrap
/// placement, dead-value pruning) plus the bytecode register footprint, on
/// INS-1 at 1 TB/s.
pub fn compiler() -> String {
    let mut out = header("Circuit compiler: standard pass pipeline + bytecode (INS-1, 1 TB/s)");
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>8} {:>9} {:>9} {:>7} {:>7} {:>6} {:>10} {:>10}",
        "workload",
        "ops",
        "ops'",
        "keysw",
        "keysw'",
        "boots",
        "boots'",
        "regs",
        "serial",
        "serial'"
    );
    for o in compile_outcomes(&[CkksInstance::ins1()]) {
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>8} {:>9} {:>9} {:>7} {:>7} {:>6} {:>8.2}ms {:>8.2}ms",
            o.workload,
            o.ops_before,
            o.ops_after,
            o.key_switches_before,
            o.key_switches_after,
            o.bootstraps_before,
            o.bootstraps_after,
            o.registers,
            o.serial_before * 1e3,
            o.serial_after * 1e3,
        );
    }
    let _ = writeln!(
        out,
        "(primed columns are post-pipeline; the optimized circuit is executed as flat\n\
         bytecode whose trace is op-for-op identical to the tree-walking oracle on\n\
         the same circuit, so the before/after delta is purely the pass pipeline's)"
    );
    out
}

/// The `compile` section of [`workloads_json`]: one row per registry workload
/// × Table 4 instance at the bts-1tb design point.
fn compile_json_rows() -> Vec<String> {
    compile_outcomes(&CkksInstance::evaluation_set())
        .into_iter()
        .map(|o| {
            format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"instance\": \"{}\", \"config\": \"bts-1tb\", ",
                    "\"ops_before\": {}, \"ops_after\": {}, ",
                    "\"key_switches_before\": {}, \"key_switches_after\": {}, ",
                    "\"bootstraps_before\": {}, \"bootstraps_after\": {}, ",
                    "\"registers\": {}, ",
                    "\"serial_seconds_before\": {:.6e}, \"serial_seconds_after\": {:.6e}}}"
                ),
                o.workload,
                o.instance,
                o.ops_before,
                o.ops_after,
                o.key_switches_before,
                o.key_switches_after,
                o.bootstraps_before,
                o.bootstraps_after,
                o.registers,
                o.serial_before,
                o.serial_after,
            )
        })
        .collect()
}

/// The offered loads (burst sizes = concurrency) of the `serve` sweep.
const SERVE_LOADS: [usize; 3] = [1, 2, 4];

/// Machine-readable per-workload simulation results: every workload of
/// [`bts_workloads::standard_registry`] lowered, simulated serially *and*
/// through the `bts-sched` dependency-aware scheduler on every point of
/// [`SweepGrid::paper_default`] (Table 4 instances × {1, 2} TB/s HBM), plus
/// the `serve` section — the `bts-serve` co-scheduling sweep of the
/// bootstrap workload at offered loads of 1, 2 and 4 concurrent jobs — the
/// `compile` section, the circuit compiler's before/after ledger per
/// workload and instance — the `cluster` section, the `bts-cluster`
/// scaling curve (architecture presets × chip counts on the bootstrap
/// stream) — and the `resilience` section, the fault-injection sweep
/// (queue policy × offered load × {0, 1} failed chips on the 4-chip BTS
/// fleet). The CI smoke step writes this to `BENCH_FIGURES.json` (and fails
/// if any workload schedules slower than serial, if co-scheduled bootstrap
/// throughput at 2 TB/s fails to beat one-at-a-time service, if the pass
/// pipeline grows any workload's key-switch count, if the 4-chip BTS
/// fleet fails to double single-chip throughput, if SLO attainment ever
/// *rises* with offered load, or if losing one chip of four costs more than
/// 40% of healthy goodput), so the perf trajectory of the repo is diffable
/// across PRs without parsing the human tables.
pub fn workloads_json() -> String {
    let registry = standard_registry();
    let grid = SweepGrid::paper_default();
    let mut rows = Vec::new();
    for point in grid.points() {
        let ins = &point.instance;
        let sim = Simulator::new(point.config.config.clone(), ins.clone());
        for (name, workload) in registry.iter() {
            let lowered = workload
                .lower(ins)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", ins.name()));
            let run = sim.run_scheduled(&lowered.trace);
            let hinted = sim
                .try_run_with_hints(&lowered.trace, &lowered.hints)
                .expect("lowered traces validate");
            let belady = sim
                .try_run_belady(&lowered.trace)
                .expect("lowered traces validate");
            let report = &run.report;
            rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"instance\": \"{}\", \"config\": \"{}\", ",
                    "\"ops\": {}, \"key_switches\": {}, \"rotation_keys\": {}, ",
                    "\"bootstraps\": {}, \"serial_seconds\": {:.6e}, ",
                    "\"scheduled_seconds\": {:.6e}, \"critical_path_seconds\": {:.6e}, ",
                    "\"parallel_speedup\": {:.4}, ",
                    "\"bootstrap_fraction\": {:.4}, \"hbm_gbytes\": {:.3}, ",
                    "\"cache_hit_rate\": {:.4}, \"hinted_cache_hit_rate\": {:.4}, ",
                    "\"belady_cache_hit_rate\": {:.4}, ",
                    "\"energy_j\": {:.4}, \"edap\": {:.6e}}}"
                ),
                name,
                ins.name(),
                point.config.name,
                lowered.trace.len(),
                lowered.trace.key_switch_count(),
                lowered.trace.rotation_keys,
                lowered.bootstrap_count,
                report.total_seconds,
                report.scheduled_seconds.expect("scheduled run"),
                report.critical_path_seconds.expect("scheduled run"),
                report.parallel_speedup().expect("scheduled run"),
                report.bootstrap_fraction(),
                report.hbm_bytes as f64 / 1e9,
                report.cache_hit_rate(),
                hinted.cache_hit_rate(),
                belady.cache_hit_rate(),
                report.energy_j,
                report.edap(),
            ));
        }
    }
    let configs = grid
        .configs()
        .iter()
        .map(|c| format!("\"{}\": \"{}\"", c.name, c.description))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"schema\": 6,\n  \"configs\": {{{}}},\n  \"results\": [\n{}\n  ],\n  \"serve\": [\n{}\n  ],\n  \"compile\": [\n{}\n  ],\n  \"cluster\": [\n{}\n  ],\n  \"resilience\": [\n{}\n  ]\n}}\n",
        configs,
        rows.join(",\n"),
        serve_json_rows(&grid).join(",\n"),
        compile_json_rows().join(",\n"),
        cluster_json_rows().join(",\n"),
        resilience_json_rows().join(",\n")
    )
}

/// The `serve` section of [`workloads_json`]: FIFO bursts of the bootstrap
/// workload at each offered load, one row per grid point × load.
fn serve_json_rows(grid: &SweepGrid) -> Vec<String> {
    let mut rows = Vec::new();
    for config in grid.configs() {
        for ins in grid.instances() {
            for &load in &SERVE_LOADS {
                let jobs = SyntheticArrivals::burst(ins, "bootstrap", load);
                let report = serve_jobs(
                    &jobs,
                    ServeOptions::new(load).with_config(config.config.clone()),
                )
                .expect("bootstrap serves on every paper instance");
                rows.push(format!(
                    concat!(
                        "    {{\"workload\": \"bootstrap\", \"instance\": \"{}\", ",
                        "\"config\": \"{}\", \"policy\": \"{}\", \"jobs\": {}, ",
                        "\"concurrency\": {}, \"makespan_seconds\": {:.6e}, ",
                        "\"sum_serial_seconds\": {:.6e}, ",
                        "\"throughput_jobs_per_sec\": {:.4}, ",
                        "\"serial_throughput_jobs_per_sec\": {:.4}, ",
                        "\"coscheduling_speedup\": {:.4}, ",
                        "\"p50_latency_seconds\": {:.6e}, \"p99_latency_seconds\": {:.6e}, ",
                        "\"mult_slots_per_sec\": {:.6e}, \"tenant_fairness\": {:.4}}}"
                    ),
                    ins.name(),
                    config.name,
                    report.policy,
                    report.job_count(),
                    report.max_in_flight,
                    report.makespan_seconds,
                    report.sum_serial_seconds(),
                    report.throughput_jobs_per_sec(),
                    report.serial_throughput_jobs_per_sec(),
                    report.coscheduling_speedup(),
                    report.latency_percentile(50.0),
                    report.latency_percentile(99.0),
                    report.mult_slots_per_sec(),
                    report.tenant_fairness(),
                ));
            }
        }
    }
    rows
}

/// The serving layer (`bts-serve`): co-scheduled throughput and latency vs
/// offered load on the bootstrap workload, then a queueing-policy comparison
/// under a seeded multi-tenant mixed stream. At 1 TB/s the machine is
/// evk-streaming bound and co-scheduling only recovers compute slack; at
/// 2 TB/s ops from different tenants genuinely interleave and aggregate
/// throughput beats one-at-a-time service.
pub fn serve() -> String {
    let mut out = header("Serving layer: throughput and latency vs offered load (bts-serve)");
    let grid = SweepGrid::paper_default();
    let ins = CkksInstance::ins1();
    // The 2 TB/s two-job point doubles as the closing summary line.
    let mut two_job_2tb = None;
    for config in grid.configs() {
        let _ = writeln!(
            out,
            "{}: {} (INS-1, bootstrap burst)",
            config.name, config.description
        );
        let _ = writeln!(
            out,
            "  {:<5} {:>12} {:>12} {:>14} {:>9} {:>10} {:>10}",
            "jobs", "makespan", "jobs/s", "serial jobs/s", "speedup", "p50 (ms)", "p99 (ms)"
        );
        for &load in &SERVE_LOADS {
            let jobs = SyntheticArrivals::burst(&ins, "bootstrap", load);
            let report = serve_jobs(
                &jobs,
                ServeOptions::new(load).with_config(config.config.clone()),
            )
            .expect("bootstrap serves on INS-1");
            let _ = writeln!(
                out,
                "  {:<5} {:>10.2}ms {:>12.1} {:>14.1} {:>8.3}x {:>10.2} {:>10.2}",
                load,
                report.makespan_seconds * 1e3,
                report.throughput_jobs_per_sec(),
                report.serial_throughput_jobs_per_sec(),
                report.coscheduling_speedup(),
                report.latency_percentile(50.0) * 1e3,
                report.latency_percentile(99.0) * 1e3,
            );
            if config.name == "bts-2tb" && load == 2 {
                two_job_2tb = Some(report);
            }
        }
    }
    // Queueing policies under one seeded three-tenant stream mixing long and
    // short jobs, on the grid's bandwidth point where overlap is visible.
    let config = grid
        .configs()
        .into_iter()
        .find(|c| c.name == "bts-2tb")
        .expect("the default grid carries the 2 TB/s ablation")
        .config;
    let stream = SyntheticArrivals::new(ins, 2024)
        .mean_interarrival_seconds(2e-3)
        .tenants(3)
        .mix(vec![
            ("bootstrap".to_string(), 3.0),
            ("amortized-mult".to_string(), 1.0),
        ])
        .generate(9);
    let _ = writeln!(
        out,
        "policy comparison: 9 mixed jobs, 3 tenants, 2 ms mean interarrival, concurrency 3, 2 TB/s"
    );
    let _ = writeln!(
        out,
        "  {:<12} {:>12} {:>11} {:>10} {:>10} {:>9}",
        "policy", "makespan", "mean lat", "p99 lat", "queue p99", "fairness"
    );
    for policy in QueuePolicy::ALL {
        let report = serve_jobs(
            &stream,
            ServeOptions::new(3)
                .with_policy(policy)
                .with_config(config.clone()),
        )
        .expect("mixed stream serves on INS-1");
        let mut queue_delays: Vec<f64> = report.jobs.iter().map(|j| j.queue_seconds()).collect();
        queue_delays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let _ = writeln!(
            out,
            "  {:<12} {:>10.2}ms {:>9.2}ms {:>8.2}ms {:>8.2}ms {:>9.3}",
            policy.label(),
            report.makespan_seconds * 1e3,
            report.mean_latency_seconds() * 1e3,
            report.latency_percentile(99.0) * 1e3,
            queue_delays.last().copied().unwrap_or(0.0) * 1e3,
            report.tenant_fairness(),
        );
    }
    let report = two_job_2tb.expect("the sweep covers the 2 TB/s two-job point");
    let _ = writeln!(
        out,
        "two-job burst at 2 TB/s: makespan {:.2} ms vs serial {:.2} ms ({:.3}x), sustained {:.2e} mult slots/s",
        report.makespan_seconds * 1e3,
        report.sum_serial_seconds() * 1e3,
        report.coscheduling_speedup(),
        report.mult_slots_per_sec(),
    );
    out
}

/// Chip counts of the cluster scaling sweep.
const CLUSTER_CHIP_COUNTS: [usize; 3] = [1, 2, 4];

/// Job count of the cluster sweep's bootstrap stream.
const CLUSTER_JOBS: u64 = 16;

/// Tenant pool of the cluster sweep's bootstrap stream.
const CLUSTER_TENANTS: u32 = 4;

/// The cluster sweep's job stream: [`CLUSTER_JOBS`] bootstrap jobs at t = 0
/// from a pool of [`CLUSTER_TENANTS`] tenants on INS-1. The tenant pool is
/// what makes scale-out pay: a bootstrap evk set is ~10 GiB at INS-1, so the
/// interconnect charge amortizes over each tenant's jobs rather than being
/// paid per job.
fn cluster_stream() -> Vec<JobRequest> {
    let ins = CkksInstance::ins1();
    (0..CLUSTER_JOBS)
        .map(|i| {
            JobRequest::new(
                i,
                (i % CLUSTER_TENANTS as u64) as u32,
                "bootstrap",
                ins.clone(),
                0.0,
            )
        })
        .collect()
}

/// The cluster sweep's knobs for one (architecture, chip count) point:
/// tenant-affinity placement (keys cross the interconnect once per tenant)
/// over an NVLink-class accelerator fabric.
fn cluster_sweep_options(preset: ArchPreset, chips: usize) -> ClusterOptions {
    ClusterOptions::new(
        ChipSpec::preset(preset, chips).with_interconnect(Interconnect::nvlink_class()),
    )
    .with_placement(PlacementPolicy::TenantAffinity)
}

/// The cluster layer (`bts-cluster`): throughput scaling of the bootstrap
/// stream across architecture presets × chip counts, plus a placement-policy
/// comparison on the BTS ×4 fleet. Single-chip rows charge zero interconnect
/// and match `bts-serve` exactly; multi-chip rows pay ciphertext and
/// evaluation-key movement over the fabric.
pub fn cluster() -> String {
    let mut out = header("Cluster layer: architecture x chip-count scaling (bts-cluster)");
    let jobs = cluster_stream();
    let _ = writeln!(
        out,
        "{} bootstrap jobs, {} tenants, INS-1, tenant-affinity placement, NVLink-class fabric",
        CLUSTER_JOBS, CLUSTER_TENANTS
    );
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>12} {:>10} {:>10} {:>10} {:>12} {:>9}",
        "preset", "chips", "makespan", "jobs/s", "scaling", "p99 (ms)", "moved (GiB)", "fairness"
    );
    for preset in ArchPreset::ALL {
        let mut base = None;
        for &chips in &CLUSTER_CHIP_COUNTS {
            let report = serve_cluster(&jobs, cluster_sweep_options(preset, chips))
                .expect("the sweep stream serves on every preset");
            let throughput = report.throughput_jobs_per_sec();
            let base_throughput = *base.get_or_insert(throughput);
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>10.2}ms {:>10.1} {:>9.2}x {:>10.2} {:>12.2} {:>9.3}",
                preset.name(),
                chips,
                report.makespan_seconds() * 1e3,
                throughput,
                throughput / base_throughput,
                report.latency_percentile(99.0) * 1e3,
                report.interconnect_bytes() as f64 / (1u64 << 30) as f64,
                report.tenant_fairness(),
            );
        }
    }
    // Interleaved tenants (i % 4) on 4 chips make round-robin accidentally
    // tenant-aligned; the placement comparison uses *blocked* tenants
    // (4 consecutive jobs each) so the policies genuinely diverge.
    let ins = CkksInstance::ins1();
    let blocked: Vec<JobRequest> = (0..CLUSTER_JOBS)
        .map(|i| {
            JobRequest::new(
                i,
                (i / CLUSTER_TENANTS as u64) as u32,
                "bootstrap",
                ins.clone(),
                0.0,
            )
        })
        .collect();
    let _ = writeln!(
        out,
        "placement comparison on BTS x4, blocked tenants, PCIe 5.0 (key movement hurts):"
    );
    let pcie = ChipSpec::preset(ArchPreset::Bts, 4);
    for placement in PlacementPolicy::ALL {
        let report = serve_cluster(
            &blocked,
            ClusterOptions::new(pcie.clone()).with_placement(placement),
        )
        .expect("the sweep stream serves under every placement");
        let _ = writeln!(
            out,
            "  {:<16} {:>10.1} jobs/s | moved {:>7.2} GiB | wire {:>8.2} ms | fairness {:.3}",
            placement.label(),
            report.throughput_jobs_per_sec(),
            report.interconnect_bytes() as f64 / (1u64 << 30) as f64,
            report.interconnect_seconds() * 1e3,
            report.tenant_fairness(),
        );
    }
    out
}

/// The `cluster` section of [`workloads_json`]: one row per architecture
/// preset × chip count on the bootstrap stream ([`cluster_stream`]).
fn cluster_json_rows() -> Vec<String> {
    let jobs = cluster_stream();
    let mut rows = Vec::new();
    for preset in ArchPreset::ALL {
        for &chips in &CLUSTER_CHIP_COUNTS {
            let report = serve_cluster(&jobs, cluster_sweep_options(preset, chips))
                .expect("the sweep stream serves on every preset");
            rows.push(format!(
                concat!(
                    "    {{\"preset\": \"{}\", \"chips\": {}, \"placement\": \"{}\", ",
                    "\"workload\": \"bootstrap\", \"instance\": \"INS-1\", \"jobs\": {}, ",
                    "\"chips_used\": {}, \"makespan_seconds\": {:.6e}, ",
                    "\"throughput_jobs_per_sec\": {:.4}, \"mult_slots_per_sec\": {:.6e}, ",
                    "\"p50_latency_seconds\": {:.6e}, \"p99_latency_seconds\": {:.6e}, ",
                    "\"tenant_fairness\": {:.4}, ",
                    "\"interconnect_bytes\": {}, \"interconnect_seconds\": {:.6e}}}"
                ),
                report.label,
                chips,
                report.placement,
                report.job_count(),
                report.chips_used(),
                report.makespan_seconds(),
                report.throughput_jobs_per_sec(),
                report.mult_slots_per_sec(),
                report.latency_percentile(50.0),
                report.latency_percentile(99.0),
                report.tenant_fairness(),
                report.interconnect_bytes(),
                report.interconnect_seconds(),
            ));
        }
    }
    rows
}

/// Offered-load points of the resilience sweep: mean interarrival seconds of
/// the seeded job stream, from comfortably under the 4-chip fleet's service
/// rate to deep overload.
const RESILIENCE_INTERARRIVALS: [f64; 3] = [8e-3, 2e-3, 0.5e-3];

/// Job count of the resilience sweep's stream.
const RESILIENCE_JOBS: usize = 48;

/// Per-job deadline slack of the resilience sweep: deadline = arrival + slack.
const RESILIENCE_SLACK_SECONDS: f64 = 0.08;

/// Bounded per-chip admission queue of the resilience sweep; overflow is shed
/// at arrival instead of queueing without bound.
const RESILIENCE_QUEUE_CAPACITY: usize = 4;

/// Which chip the wounded runs of the resilience sweep kill.
const RESILIENCE_KILLED_CHIP: usize = 1;

/// The resilience sweep's job stream at one offered load: a seeded
/// multi-tenant bootstrap-heavy mix on INS-1 where every job carries a
/// deadline of arrival + [`RESILIENCE_SLACK_SECONDS`].
fn resilience_stream(mean_interarrival: f64) -> Vec<JobRequest> {
    SyntheticArrivals::new(CkksInstance::ins1(), 2024)
        .mean_interarrival_seconds(mean_interarrival)
        .tenants(4)
        .mix(vec![
            ("bootstrap".to_string(), 3.0),
            ("amortized-mult".to_string(), 1.0),
        ])
        .generate(RESILIENCE_JOBS)
        .into_iter()
        .map(|j| {
            let deadline = j.arrival_seconds + RESILIENCE_SLACK_SECONDS;
            j.with_deadline(deadline)
        })
        .collect()
}

/// One measured point of the resilience sweep.
struct ResiliencePoint {
    policy: QueuePolicy,
    mean_interarrival: f64,
    failed_chips: usize,
    report: ClusterReport,
}

/// Runs the resilience sweep: queue policy × offered load × {healthy fleet,
/// fleet losing chip [`RESILIENCE_KILLED_CHIP`] halfway through the healthy
/// makespan}, on a 4-chip BTS NVLink fleet with tenant-affinity placement,
/// bounded queues and per-job deadlines.
fn resilience_points() -> Vec<ResiliencePoint> {
    let spec = ChipSpec::preset(ArchPreset::Bts, 4).with_interconnect(Interconnect::nvlink_class());
    let options = |policy: QueuePolicy| {
        ClusterOptions::new(spec.clone())
            .with_placement(PlacementPolicy::TenantAffinity)
            .with_policy(policy)
            .with_queue_capacity(RESILIENCE_QUEUE_CAPACITY)
    };
    let mut points = Vec::new();
    for policy in QueuePolicy::ALL {
        for &mean_interarrival in &RESILIENCE_INTERARRIVALS {
            let jobs = resilience_stream(mean_interarrival);
            let healthy = serve_cluster(&jobs, options(policy))
                .expect("the resilience stream serves on the healthy fleet");
            let kill_at = healthy.makespan_seconds() * 0.5;
            let wounded = serve_cluster(
                &jobs,
                options(policy).with_fault_plan(
                    FaultPlan::none().with_chip_failure(RESILIENCE_KILLED_CHIP, kill_at),
                ),
            )
            .expect("the wounded fleet still serves");
            points.push(ResiliencePoint {
                policy,
                mean_interarrival,
                failed_chips: 0,
                report: healthy,
            });
            points.push(ResiliencePoint {
                policy,
                mean_interarrival,
                failed_chips: 1,
                report: wounded,
            });
        }
    }
    points
}

/// Resilience under overload and chip failure (`bts-fault` + `bts-serve` +
/// `bts-cluster`): goodput and SLO attainment vs offered load per queue
/// policy, with and without losing one chip of four mid-run. Load shedding
/// (bounded queues) keeps goodput from collapsing past saturation, and
/// failover re-places a dead chip's work on the survivors, so the wounded
/// fleet degrades toward a 3-chip fleet instead of losing the run.
pub fn resilience() -> String {
    let mut out = header("Resilience: goodput and SLO vs offered load, healthy vs one dead chip");
    let _ = writeln!(
        out,
        "{} jobs, 4 tenants, INS-1, BTS x4 NVLink, deadline = arrival + {:.0} ms, queue cap {}",
        RESILIENCE_JOBS,
        RESILIENCE_SLACK_SECONDS * 1e3,
        RESILIENCE_QUEUE_CAPACITY
    );
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>6} {:>10} {:>8} {:>6} {:>9} {:>7} {:>7}",
        "policy", "offered/s", "chips", "goodput/s", "SLO", "shed", "migrated", "missed", "retried"
    );
    for p in resilience_points() {
        let _ = writeln!(
            out,
            "{:<12} {:>10.0} {:>6} {:>10.1} {:>7.1}% {:>6} {:>9} {:>7} {:>7}",
            p.policy.label(),
            1.0 / p.mean_interarrival,
            if p.failed_chips == 0 { "4" } else { "4-1" },
            p.report.goodput_jobs_per_sec(),
            p.report.slo_attainment() * 100.0,
            p.report.shed_count(),
            p.report.migration_count(),
            p.report.deadline_missed_count(),
            p.report.retry_count(),
        );
    }
    out
}

/// The `resilience` section of [`workloads_json`]: one row per queue policy ×
/// offered load × {0, 1} failed chips from [`resilience_points`].
fn resilience_json_rows() -> Vec<String> {
    resilience_points()
        .into_iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{\"policy\": \"{}\", \"mean_interarrival_seconds\": {:.6e}, ",
                    "\"offered_jobs_per_sec\": {:.4}, \"failed_chips\": {}, ",
                    "\"jobs\": {}, \"completed\": {}, \"shed\": {}, \"migrated\": {}, ",
                    "\"retried\": {}, \"deadline_missed\": {}, ",
                    "\"goodput_jobs_per_sec\": {:.4}, \"slo_attainment\": {:.4}, ",
                    "\"makespan_seconds\": {:.6e}}}"
                ),
                p.policy.label(),
                p.mean_interarrival,
                1.0 / p.mean_interarrival,
                p.failed_chips,
                p.report.submitted_count(),
                p.report.jobs.len(),
                p.report.shed_count(),
                p.report.migration_count(),
                p.report.retry_count(),
                p.report.deadline_missed_count(),
                p.report.goodput_jobs_per_sec(),
                p.report.slo_attainment(),
                p.report.makespan_seconds(),
            )
        })
        .collect()
}

/// Serial vs scheduled execution per workload (INS-1): the `bts-sched`
/// subsystem's headline comparison. At the paper's 1 TB/s design point the
/// machine is evk-streaming bound, so the schedule only recovers the slack of
/// compute-bound ops; the Fig. 9 2 TB/s ablation makes the overlap visible.
pub fn sched() -> String {
    let mut out = header("Scheduled vs serial execution (bts-sched, INS-1)");
    let ins = CkksInstance::ins1();
    let registry = standard_registry();
    for grid_config in SweepGrid::paper_default().configs() {
        let _ = writeln!(out, "{}: {}", grid_config.name, grid_config.description);
        let _ = writeln!(
            out,
            "  {:<15} {:>11} {:>11} {:>11} {:>8} {:>23}",
            "workload", "serial", "scheduled", "crit path", "speedup", "util NTTU/BConv/HBM"
        );
        let sim = Simulator::new(grid_config.config, ins.clone());
        for (name, workload) in registry.iter() {
            let lowered = workload.lower(&ins).expect("INS-1 runs every workload");
            let run = sim.run_scheduled(&lowered.trace);
            let util = run.schedule.utilizations();
            let _ = writeln!(
                out,
                "  {:<15} {:>9.2}ms {:>9.2}ms {:>9.2}ms {:>7.3}x {:>7.0}%{:>6.0}%{:>6.0}%",
                name,
                run.report.total_seconds * 1e3,
                run.schedule.makespan_seconds * 1e3,
                run.schedule.critical_path_seconds * 1e3,
                run.schedule.parallel_speedup(),
                util[FuKind::Nttu.index()] * 100.0,
                util[FuKind::BConvU.index()] * 100.0,
                util[FuKind::Hbm.index()] * 100.0,
            );
        }
    }
    let lowered = bts_workloads::BootstrapWorkload
        .lower(&ins)
        .expect("bootstrappable");
    let sim = Simulator::new(BtsConfig::bts_default(), ins);
    let run = sim.run_scheduled(&lowered.trace);
    let _ = writeln!(out, "bootstrap timeline (first reservations per unit):");
    for seg in run.schedule.timeline(3) {
        let _ = writeln!(
            out,
            "  {:<16} {:<22} {:>10.1} – {:>10.1} ns",
            seg.unit, seg.label, seg.start_ns, seg.end_ns
        );
    }
    out
}

/// Cache hit-rate delta from dead-ciphertext eviction hints on HELR and
/// ResNet-20 (the ROADMAP "circuit-level caching hints" item): the
/// `TraceBackend` emits last-use metadata, and the scratchpad drops dead
/// ciphertexts immediately instead of waiting for LRU pressure.
pub fn hints() -> String {
    let mut out = header("Eviction: LRU vs last-use hints vs Belady (furthest next use)");
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>10} {:>10} {:>11} {:>9} {:>14}",
        "workload", "instance", "LRU hit%", "hint hit%", "belady hit%", "delta", "HBM saved (GB)"
    );
    for ins in CkksInstance::evaluation_set() {
        let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
        for workload in [
            &HelrWorkload::default() as &dyn Workload,
            &ResNetWorkload::default(),
        ] {
            let lowered = workload.lower(&ins).expect("paper instances");
            let plain = sim.run(&lowered.trace);
            let hinted = sim
                .try_run_with_hints(&lowered.trace, &lowered.hints)
                .expect("lowered traces validate");
            let belady = sim
                .try_run_belady(&lowered.trace)
                .expect("lowered traces validate");
            let _ = writeln!(
                out,
                "{:<10} {:<10} {:>9.2}% {:>9.2}% {:>10.2}% {:>8.2}% {:>14.3}",
                workload.name(),
                ins.name(),
                plain.cache_hit_rate() * 100.0,
                hinted.cache_hit_rate() * 100.0,
                belady.cache_hit_rate() * 100.0,
                (belady.cache_hit_rate() - plain.cache_hit_rate()) * 100.0,
                (plain.ct_miss_bytes.saturating_sub(belady.ct_miss_bytes)) as f64 / 1e9,
            );
        }
    }
    let _ = writeln!(
        out,
        "(Last-use hints only drop dead ciphertexts, and on these workloads recency\n\
         already tracks liveness — forwarding keeps single-use intermediates out of\n\
         the cache — so hint-vs-LRU deltas are ~0. Belady is the stronger bound: it\n\
         also ranks *live* residents by next use (and bypasses later-needed\n\
         newcomers), which matches LRU where the cache is ample (INS-1) but\n\
         recovers 11-20 points of hit rate and 60-110 GB of HBM traffic on\n\
         INS-2/3, whose bigger ciphertexts make the 512 MiB cache tight. That\n\
         headroom motivates reuse-distance-aware eviction as a follow-on. Future\n\
         knowledge also wins when recency and liveness diverge, e.g. a value that\n\
         dies while recent:)"
    );
    // Microbenchmark where a dead-but-recent value would push out a live-but-
    // old one under plain LRU (the `bts-sim` engine test's shape).
    let ins = CkksInstance::ins1();
    let mut b = bts_sim::TraceBuilder::new(&ins);
    let hot = b.fresh_ct(27);
    for k in 0..12 {
        let t = b.fresh_ct(27);
        let p = b.hmult_at(t, t, 27);
        let q = b.hmult_at(p, p, 27);
        if k % 2 == 0 {
            b.hmult_at(q, hot, 27);
        }
    }
    let trace = b.build();
    let sim = Simulator::new(
        BtsConfig::bts_default().with_scratchpad_bytes(384 * 1024 * 1024),
        ins,
    );
    let plain = sim.run(&trace);
    let hinted = sim
        .try_run_with_hints(&trace, &bts_sim::EvictionHints::from_trace(&trace))
        .expect("valid microbenchmark trace");
    let belady = sim
        .try_run_belady(&trace)
        .expect("valid microbenchmark trace");
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>9.2}% {:>9.2}% {:>10.2}% {:>8.2}% {:>14.3}",
        "divergent",
        "INS-1/384M",
        plain.cache_hit_rate() * 100.0,
        hinted.cache_hit_rate() * 100.0,
        belady.cache_hit_rate() * 100.0,
        (belady.cache_hit_rate() - plain.cache_hit_rate()) * 100.0,
        (plain.ct_miss_bytes.saturating_sub(belady.ct_miss_bytes)) as f64 / 1e9,
    );
    out
}

/// Every figure/table in order, concatenated.
pub fn all() -> String {
    [
        table1(),
        fig1(),
        fig2(),
        fig3b(),
        table3(),
        table4(),
        fig6(),
        fig7a(),
        fig7b(),
        table5(),
        table6(),
        fig8(),
        fig9(),
        fig10(),
        sched(),
        serve(),
        cluster(),
        resilience(),
        hints(),
        compiler(),
        slowdown(),
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// `workloads_json` regenerates the full sweep (scheduler, serve and
    /// compiler sections); several tests assert on it, so build it once.
    fn cached_json() -> &'static str {
        static JSON: OnceLock<String> = OnceLock::new();
        JSON.get_or_init(workloads_json)
    }

    #[test]
    fn every_figure_renders_nonempty() {
        for (name, text) in [
            ("table1", table1()),
            ("fig1", fig1()),
            ("fig3b", fig3b()),
            ("table3", table3()),
            ("table4", table4()),
            ("fig8", fig8()),
        ] {
            assert!(text.lines().count() > 3, "{name} too short:\n{text}");
        }
    }

    #[test]
    fn workloads_json_covers_every_workload_and_instance() {
        let json = cached_json();
        assert!(json.contains("\"schema\": 6"));
        for name in ["amortized-mult", "bootstrap", "helr", "resnet20", "sorting"] {
            assert!(
                json.contains(&format!("\"workload\": \"{name}\"")),
                "{name}"
            );
        }
        for ins in ["INS-1", "INS-2", "INS-3"] {
            assert!(json.contains(&format!("\"instance\": \"{ins}\"")), "{ins}");
        }
        for cfg in ["bts-1tb", "bts-2tb"] {
            assert!(json.contains(&format!("\"config\": \"{cfg}\"")), "{cfg}");
        }
        // Results: 5 workloads × 3 instances × 2 configs.
        assert_eq!(json.matches("\"parallel_speedup\"").count(), 30);
        // Serve sweep: 3 instances × 2 configs × 3 offered loads.
        assert_eq!(json.matches("\"coscheduling_speedup\"").count(), 18);
        // Compiler ledger: 5 workloads × 3 instances.
        assert_eq!(json.matches("\"key_switches_before\"").count(), 15);
        // Cluster scaling curve: 4 architecture presets × 3 chip counts.
        assert_eq!(json.matches("\"chips_used\"").count(), 12);
        // Resilience sweep: 3 policies × 3 offered loads × {0, 1} failed chips.
        assert_eq!(json.matches("\"failed_chips\"").count(), 18);
        // Structurally balanced (cheap well-formedness check without a JSON
        // parser dependency).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn serve_rows_gate_coscheduled_throughput() {
        // The CI smoke step enforces the same bounds on the committed file.
        let json = cached_json();
        let field = |line: &str, name: &str| -> f64 {
            let tail = line.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let rows: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"coscheduling_speedup\""))
            .collect();
        assert_eq!(rows.len(), 18);
        for row in &rows {
            let speedup = field(row, "coscheduling_speedup");
            let p50 = field(row, "p50_latency_seconds");
            let p99 = field(row, "p99_latency_seconds");
            // Burst arrivals at t = 0: the merged makespan can never exceed
            // the serial sum (a structural guarantee of the multi-DAG
            // scheduler), and percentiles are ordered.
            assert!(
                speedup >= 1.0 - 1e-9,
                "co-scheduling slower than serial: {row}"
            );
            assert!(p99 >= p50 - 1e-18, "percentiles out of order: {row}");
            assert!(
                field(row, "tenant_fairness") > 0.3,
                "fairness collapsed: {row}"
            );
            // Each job's latency is bounded below by its critical path, so
            // the sustained mult-slot rate is finite and positive.
            assert!(field(row, "mult_slots_per_sec") > 0.0);
        }
        // The acceptance gate: at 2 TB/s, offered load ≥ 2 co-scheduled
        // bootstrap jobs must beat one-at-a-time throughput on every
        // instance, and by a real margin where compute matters (INS-2/3 stay
        // closer to evk-streaming bound, so their gain is genuine but small).
        let gated: Vec<&&str> = rows
            .iter()
            .filter(|l| l.contains("\"config\": \"bts-2tb\"") && field(l, "concurrency") >= 2.0)
            .collect();
        assert!(!gated.is_empty());
        let mut best = 0.0f64;
        for row in gated {
            assert!(
                field(row, "throughput_jobs_per_sec")
                    > field(row, "serial_throughput_jobs_per_sec") * 1.005,
                "co-scheduling failed to beat serial service at 2 TB/s: {row}"
            );
            best = best.max(field(row, "coscheduling_speedup"));
        }
        assert!(
            best > 1.05,
            "no instance shows substantial co-scheduling gain at 2 TB/s: {best}"
        );
    }

    #[test]
    fn cluster_rows_gate_the_scaling_curve() {
        // The CI smoke step enforces the same bounds on the committed file:
        // at least three architecture presets, zero interconnect traffic on
        // single-chip rows, and the 4-chip BTS fleet at least doubling
        // single-chip throughput on the bootstrap stream at 1 TB/s.
        let json = cached_json();
        let field = |line: &str, name: &str| -> f64 {
            let tail = line.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let rows: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"chips_used\""))
            .collect();
        assert_eq!(rows.len(), 12);
        let presets: std::collections::BTreeSet<&str> = rows
            .iter()
            .map(|l| {
                l.split("\"preset\": \"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap()
            })
            .collect();
        assert!(presets.len() >= 3, "presets covered: {presets:?}");
        let throughput_of = |preset: &str, chips: f64| -> f64 {
            let row = rows
                .iter()
                .find(|l| {
                    l.contains(&format!("\"preset\": \"{preset}\"")) && field(l, "chips") == chips
                })
                .unwrap_or_else(|| panic!("no row for {preset} x{chips}"));
            field(row, "throughput_jobs_per_sec")
        };
        for row in &rows {
            assert!(field(row, "tenant_fairness") > 0.3, "fairness: {row}");
            assert!(field(row, "throughput_jobs_per_sec") > 0.0, "idle: {row}");
            if field(row, "chips") == 1.0 {
                assert_eq!(
                    field(row, "interconnect_bytes"),
                    0.0,
                    "single chip moved bytes: {row}"
                );
            } else {
                assert!(
                    field(row, "interconnect_bytes") > 0.0,
                    "multi-chip moved nothing: {row}"
                );
            }
        }
        for preset in &presets {
            assert!(
                throughput_of(preset, 4.0) > throughput_of(preset, 1.0),
                "{preset}: 4 chips not faster than 1"
            );
        }
        // The acceptance gate: BTS at the paper's 1 TB/s design point scales
        // to ≥ 2× on 4 chips.
        assert!(
            throughput_of("bts", 4.0) >= 2.0 * throughput_of("bts", 1.0),
            "bts 4-chip throughput below 2x single chip"
        );
    }

    #[test]
    fn resilience_rows_gate_graceful_degradation() {
        // The CI smoke step enforces the same bounds on the committed file:
        // SLO attainment must be monotone non-increasing in offered load for
        // every (policy, failed-chip) curve, and losing one chip of four must
        // keep at least 60% of the healthy fleet's goodput at every load —
        // degradation, not collapse.
        let json = cached_json();
        let field = |line: &str, name: &str| -> f64 {
            let tail = line.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let policy_of = |line: &str| -> String {
            line.split("\"policy\": \"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .to_string()
        };
        let rows: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"failed_chips\""))
            .collect();
        assert_eq!(rows.len(), 18);
        for row in &rows {
            let jobs = field(row, "jobs");
            let completed = field(row, "completed");
            let shed = field(row, "shed");
            assert_eq!(completed + shed, jobs, "jobs unaccounted for: {row}");
            assert!(
                field(row, "goodput_jobs_per_sec") > 0.0,
                "idle fleet: {row}"
            );
            let slo = field(row, "slo_attainment");
            assert!((0.0..=1.0).contains(&slo), "SLO out of range: {row}");
            if field(row, "failed_chips") == 1.0 {
                assert!(
                    field(row, "migrated") > 0.0,
                    "chip failure with no migrations: {row}"
                );
            }
        }
        for policy in ["fifo", "sjf", "round-robin"] {
            for failed in [0.0, 1.0] {
                let mut curve: Vec<(f64, f64)> = rows
                    .iter()
                    .filter(|l| policy_of(l) == policy && field(l, "failed_chips") == failed)
                    .map(|l| (field(l, "offered_jobs_per_sec"), field(l, "slo_attainment")))
                    .collect();
                assert_eq!(curve.len(), 3, "{policy}/{failed}");
                curve.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for pair in curve.windows(2) {
                    assert!(
                        pair[1].1 <= pair[0].1 + 1e-9,
                        "{policy} (failed={failed}): SLO rose with offered load: {curve:?}"
                    );
                }
            }
            // Graceful degradation: at every offered load, the wounded fleet
            // keeps ≥ 60% of healthy goodput (≈ a 3-of-4-chip fleet).
            for &load in &RESILIENCE_INTERARRIVALS {
                let goodput_at = |failed: f64| -> f64 {
                    let row = rows
                        .iter()
                        .find(|l| {
                            policy_of(l) == policy
                                && field(l, "failed_chips") == failed
                                && (field(l, "mean_interarrival_seconds") - load).abs()
                                    < load * 1e-6
                        })
                        .unwrap_or_else(|| panic!("no row for {policy}@{load}/{failed}"));
                    field(row, "goodput_jobs_per_sec")
                };
                assert!(
                    goodput_at(1.0) >= 0.6 * goodput_at(0.0),
                    "{policy}@{load}: one dead chip collapsed goodput"
                );
            }
        }
    }

    #[test]
    fn resilience_figure_reports_every_policy_and_fleet_state() {
        let text = resilience();
        for policy in ["fifo", "sjf", "round-robin"] {
            assert!(text.contains(policy), "{policy} missing:\n{text}");
        }
        assert!(text.contains("4-1"), "wounded rows missing:\n{text}");
        assert!(text.lines().count() > 20);
    }

    #[test]
    fn cluster_figure_reports_every_preset_and_placement() {
        let text = cluster();
        for preset in ["bts", "fab", "basalisc", "fpt"] {
            assert!(text.contains(preset), "{preset} missing:\n{text}");
        }
        for placement in ["round-robin", "least-loaded", "tenant-affinity"] {
            assert!(text.contains(placement), "{placement} missing:\n{text}");
        }
        assert!(text.lines().count() > 15);
    }

    #[test]
    fn serve_figure_reports_the_policy_comparison() {
        let text = serve();
        for policy in ["fifo", "sjf", "round-robin"] {
            assert!(text.contains(policy), "{policy} missing:\n{text}");
        }
        assert!(text.contains("bts-2tb"));
        assert!(text.lines().count() > 10);
    }

    #[test]
    fn workloads_json_schedules_never_slower_than_serial() {
        // The CI smoke step enforces the same bound on the committed file;
        // this keeps the invariant testable without regenerating it. Compare
        // the raw seconds, not the clamped parallel_speedup ratio, so a real
        // makespan > serial regression cannot hide behind the clamp.
        let json = cached_json();
        let field = |line: &str, name: &str| -> f64 {
            let tail = line.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let rows: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"parallel_speedup\""))
            .collect();
        assert_eq!(rows.len(), 30);
        let mut max_speedup = 0.0f64;
        for row in rows {
            let serial = field(row, "serial_seconds");
            let scheduled = field(row, "scheduled_seconds");
            let cp = field(row, "critical_path_seconds");
            assert!(
                scheduled <= serial * (1.0 + 1e-9),
                "schedule slower than serial: {row}"
            );
            assert!(
                cp <= scheduled * (1.0 + 1e-9),
                "critical path exceeds makespan: {row}"
            );
            max_speedup = max_speedup.max(field(row, "parallel_speedup"));
        }
        // The Fig. 9 ablation rows show measurable overlap on the
        // bootstrap-heavy workloads (acceptance: > 1.05 on bootstrap or
        // ResNet-20).
        assert!(
            max_speedup > 1.05,
            "no workload shows measurable overlap: {max_speedup}"
        );
    }

    #[test]
    fn compile_rows_gate_key_switch_reduction() {
        // The CI smoke step enforces the same bounds on the committed file:
        // the pass pipeline must never grow a workload's key-switch count or
        // serial time, and must strictly reduce key-switches on at least two
        // workloads.
        let json = cached_json();
        let field = |line: &str, name: &str| -> f64 {
            let tail = line.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let rows: Vec<&str> = json
            .lines()
            .filter(|l| l.contains("\"key_switches_before\""))
            .collect();
        assert_eq!(rows.len(), 15);
        let mut strictly_reduced = std::collections::BTreeSet::new();
        for row in &rows {
            let before = field(row, "key_switches_before");
            let after = field(row, "key_switches_after");
            assert!(after <= before, "pipeline grew key-switches: {row}");
            assert!(
                field(row, "serial_seconds_after")
                    <= field(row, "serial_seconds_before") * (1.0 + 1e-9),
                "pipeline slowed a workload down: {row}"
            );
            assert!(field(row, "ops_after") <= field(row, "ops_before"));
            assert!(field(row, "registers") >= 1.0);
            if after < before {
                let workload = row
                    .split("\"workload\": \"")
                    .nth(1)
                    .unwrap()
                    .split('"')
                    .next()
                    .unwrap();
                strictly_reduced.insert(workload.to_string());
            }
        }
        assert!(
            strictly_reduced.len() >= 2,
            "expected strict key-switch reduction on ≥ 2 workloads, got {strictly_reduced:?}"
        );
    }

    #[test]
    fn fig6_reports_large_speedup_over_lattigo() {
        let text = fig6();
        assert!(text.contains("speedup of best BTS instance over Lattigo"));
        // Extract the speedup number and require at least three orders of
        // magnitude (the paper reports 2,237×).
        let line = text
            .lines()
            .find(|l| l.contains("speedup of best"))
            .unwrap();
        let value: f64 = line
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .split('×')
            .next()
            .unwrap()
            .replace(',', "")
            .parse()
            .unwrap();
        assert!(value > 500.0, "speedup {value} too small");
    }
}
