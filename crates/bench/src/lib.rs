//! # bts-bench
//!
//! Regenerates every table and figure of the BTS paper's evaluation from the
//! models and simulator in this workspace. Each `figures::*` function returns
//! the data as formatted text; the `figures` binary prints them, and the
//! Criterion benches under `benches/` time the underlying code paths.
//!
//! Run `cargo run -p bts-bench --bin figures -- all` to print everything.

#![warn(missing_docs)]

pub mod figures;
pub mod sweep;
