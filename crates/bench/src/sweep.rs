//! Multi-instance sweeps as data: one registry-driven grid of
//! `(N, L, dnum, scratchpad, HBM)` points that the `sched`, `serve` and JSON
//! figures all consume, instead of each figure hand-rolling its own config
//! list. `(N, L, dnum)` travel inside the [`CkksInstance`]; scratchpad size
//! and HBM bandwidth span the hardware axes.

use bts_params::{BandwidthModel, CkksInstance};
use bts_sim::BtsConfig;

/// One hardware configuration of the grid, with a stable name for JSON keys
/// (`bts-1tb`, `bts-2tb`, `bts-256mib-1tb`, …).
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Stable key, used as the `config` field of every JSON row.
    pub name: String,
    /// Human-readable description for the JSON `configs` map.
    pub description: String,
    /// The configuration itself.
    pub config: BtsConfig,
}

/// One `(instance, configuration)` point of the grid.
#[derive(Debug, Clone)]
pub struct GridPoint {
    /// The CKKS instance (carrying N, L, dnum).
    pub instance: CkksInstance,
    /// The hardware configuration.
    pub config: GridConfig,
}

/// A cartesian sweep grid: instances × scratchpad sizes × HBM bandwidths.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    instances: Vec<CkksInstance>,
    scratchpad_bytes: Vec<u64>,
    hbm: Vec<BandwidthModel>,
}

/// The paper's default scratchpad capacity (512 MiB), elided from config
/// names so the grid's JSON keys stay compatible with earlier schemas.
const DEFAULT_SCRATCHPAD: u64 = 512 * 1024 * 1024;

impl SweepGrid {
    /// An explicit grid.
    ///
    /// # Panics
    ///
    /// Panics if any axis is empty.
    pub fn new(
        instances: Vec<CkksInstance>,
        scratchpad_bytes: Vec<u64>,
        hbm: Vec<BandwidthModel>,
    ) -> Self {
        assert!(!instances.is_empty(), "grid needs at least one instance");
        assert!(
            !scratchpad_bytes.is_empty(),
            "grid needs at least one scratchpad size"
        );
        assert!(!hbm.is_empty(), "grid needs at least one HBM bandwidth");
        Self {
            instances,
            scratchpad_bytes,
            hbm,
        }
    }

    /// The grid the committed `BENCH_FIGURES.json` covers: the three Table 4
    /// instances, the 512 MiB design-point scratchpad, and the 1 TB/s design
    /// point plus the Fig. 9 2 TB/s ablation.
    pub fn paper_default() -> Self {
        Self::new(
            CkksInstance::evaluation_set(),
            vec![DEFAULT_SCRATCHPAD],
            vec![BandwidthModel::hbm_1tb(), BandwidthModel::hbm_2tb()],
        )
    }

    /// The instances of the grid.
    pub fn instances(&self) -> &[CkksInstance] {
        &self.instances
    }

    /// The hardware configurations of the grid (scratchpad × HBM cartesian),
    /// in deterministic axis order.
    pub fn configs(&self) -> Vec<GridConfig> {
        let mut out = Vec::with_capacity(self.scratchpad_bytes.len() * self.hbm.len());
        for &scratchpad in &self.scratchpad_bytes {
            for &hbm in &self.hbm {
                let tb = hbm.bytes_per_sec() / 1e12;
                let mib = scratchpad / (1024 * 1024);
                let name = if scratchpad == DEFAULT_SCRATCHPAD {
                    format!("bts-{}tb", trim_float(tb))
                } else {
                    format!("bts-{mib}mib-{}tb", trim_float(tb))
                };
                out.push(GridConfig {
                    name,
                    description: format!(
                        "BTS design point with {mib} MiB scratchpad, {} TB/s HBM",
                        trim_float(tb)
                    ),
                    config: BtsConfig::bts_default()
                        .with_scratchpad_bytes(scratchpad)
                        .with_hbm(hbm),
                });
            }
        }
        out
    }

    /// Every `(instance, configuration)` point, configs outer, instances
    /// inner — the iteration order of the JSON results.
    pub fn points(&self) -> Vec<GridPoint> {
        let mut out = Vec::new();
        for config in self.configs() {
            for instance in &self.instances {
                out.push(GridPoint {
                    instance: instance.clone(),
                    config: config.clone(),
                });
            }
        }
        out
    }
}

/// `1.0 → "1"`, `1.5 → "1.5"` — keeps `bts-1tb` stable while allowing
/// fractional bandwidths in custom grids.
fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_grid_matches_the_committed_schema() {
        let grid = SweepGrid::paper_default();
        let configs = grid.configs();
        assert_eq!(
            configs.iter().map(|c| c.name.as_str()).collect::<Vec<_>>(),
            vec!["bts-1tb", "bts-2tb"]
        );
        assert_eq!(grid.instances().len(), 3);
        let points = grid.points();
        assert_eq!(points.len(), 6);
        // Configs outer, instances inner.
        assert_eq!(points[0].config.name, "bts-1tb");
        assert_eq!(points[0].instance.name(), "INS-1");
        assert_eq!(points[3].config.name, "bts-2tb");
    }

    #[test]
    fn non_default_scratchpads_get_distinct_names() {
        let grid = SweepGrid::new(
            vec![CkksInstance::ins1()],
            vec![256 * 1024 * 1024, 512 * 1024 * 1024],
            vec![BandwidthModel::hbm_1tb()],
        );
        let names: Vec<String> = grid.configs().into_iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["bts-256mib-1tb", "bts-1tb"]);
        for c in grid.configs() {
            assert!(!c.description.is_empty());
        }
    }

    #[test]
    fn empty_axes_are_rejected() {
        assert!(std::panic::catch_unwind(|| SweepGrid::new(
            vec![],
            vec![DEFAULT_SCRATCHPAD],
            vec![BandwidthModel::hbm_1tb()]
        ))
        .is_err());
    }
}
