//! Criterion benchmarks that regenerate every table and figure of the paper's
//! evaluation — one benchmark per experiment, timing the full regeneration
//! path (parameter sweeps, simulator runs, workload generation). The actual
//! rows are printed by `cargo run -p bts-bench --bin figures`.

use criterion::{criterion_group, criterion_main, Criterion};

use bts_bench::figures;

fn bench_paper_figures(c: &mut Criterion) {
    c.bench_function("table1_platform_comparison", |b| b.iter(figures::table1));
    c.bench_function("fig1_dnum_tradeoff", |b| b.iter(figures::fig1));
    c.bench_function("fig2_minbound_sweep", |b| b.iter(figures::fig2));
    c.bench_function("fig3b_complexity_breakdown", |b| b.iter(figures::fig3b));
    c.bench_function("table3_area_power", |b| b.iter(figures::table3));
    c.bench_function("table4_instances", |b| b.iter(figures::table4));
    c.bench_function("fig6_amortized_mult", |b| b.iter(figures::fig6));
    c.bench_function("fig7a_scratchpad_bound", |b| b.iter(figures::fig7a));
    c.bench_function("fig7b_bootstrap_fraction", |b| b.iter(figures::fig7b));
    c.bench_function("table5_helr", |b| b.iter(figures::table5));
    c.bench_function("table6_resnet_sorting", |b| b.iter(figures::table6));
    c.bench_function("fig8_hmult_timeline", |b| b.iter(figures::fig8));
    c.bench_function("fig9_ablation", |b| b.iter(figures::fig9));
    c.bench_function("fig10_scratchpad_edap", |b| b.iter(figures::fig10));
    c.bench_function("slowdown_vs_unencrypted", |b| b.iter(figures::slowdown));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_paper_figures
}
criterion_main!(benches);
