//! Criterion benchmarks of the microarchitecture models added on top of the
//! trace simulator: the function-level key-switch schedule (Fig. 8), the
//! 3D-NTT / NoC interplay (§5.1, §5.4), the scratchpad allocation plan
//! (§5.3) and the per-instance amortized-mult simulation that feeds Fig. 6.

use criterion::{criterion_group, criterion_main, Criterion};

use bts_math::Ntt3dPlan;
use bts_params::CkksInstance;
use bts_sim::{AllocationPlan, BtsConfig, KeySwitchSchedule, PePeNoc, Simulator, TwiddleStorage};
use bts_workloads::amortized_mult_per_slot;

fn bench_microarchitecture(c: &mut Criterion) {
    let config = BtsConfig::bts_default();

    c.bench_function("keyswitch_schedule_ins1_top_level", |b| {
        let ins = CkksInstance::ins1();
        b.iter(|| KeySwitchSchedule::build(&config, &ins, ins.max_level(), true))
    });

    c.bench_function("keyswitch_schedule_ins3_all_levels", |b| {
        let ins = CkksInstance::ins3();
        b.iter(|| {
            (0..=ins.max_level())
                .map(|l| KeySwitchSchedule::build(&config, &ins, l, true).latency)
                .sum::<f64>()
        })
    });

    c.bench_function("ntt3d_plan_and_noc_check", |b| {
        let noc = PePeNoc::bts_default();
        b.iter(|| {
            let plan = Ntt3dPlan::bts_default(1 << 17).unwrap();
            noc.transposes_hidden(&plan)
        })
    });

    c.bench_function("scratchpad_allocation_plan_sweep", |b| {
        b.iter(|| {
            CkksInstance::evaluation_set()
                .iter()
                .map(|ins| AllocationPlan::for_keyswitch(&config, ins, ins.max_level()).ct_cache)
                .sum::<u64>()
        })
    });

    c.bench_function("twiddle_storage_instances", |b| {
        b.iter(|| {
            CkksInstance::evaluation_set()
                .iter()
                .map(|ins| TwiddleStorage::for_instance(ins).ot_table_bytes())
                .sum::<u64>()
        })
    });

    c.bench_function("amortized_mult_simulation_ins2", |b| {
        let sim = Simulator::new(BtsConfig::bts_default(), CkksInstance::ins2());
        b.iter(|| amortized_mult_per_slot(&sim).0)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_microarchitecture
}
criterion_main!(benches);
