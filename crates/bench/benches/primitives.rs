//! Criterion benchmarks of the number-theoretic primitives that dominate HE
//! ops (Fig. 3a's iNTT → BConv → NTT pipeline) — the software counterparts of
//! the NTTU and BConvU datapaths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};

use bts_math::{
    AutomorphismTable, BaseConverter, Modulus, NttTable, Representation, RnsBasis, RnsPoly,
};

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt_forward_inverse");
    for log_n in [10u32, 12, 13] {
        let n = 1usize << log_n;
        let prime = bts_math::generate_ntt_primes(n, 50, 1)[0];
        let table = NttTable::new(n, Modulus::new(prime)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..prime)).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                table.forward(&mut v);
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter(|| {
                let mut v = data.clone();
                table.inverse(&mut v);
                v
            })
        });
    }
    group.finish();
}

fn bench_bconv(c: &mut Criterion) {
    let mut group = c.benchmark_group("base_conversion");
    let n = 1usize << 12;
    for limbs in [4usize, 8, 12] {
        let src = RnsBasis::generate(n, 45, limbs).unwrap();
        let dst = RnsBasis::generate(n, 47, limbs).unwrap();
        let conv = BaseConverter::new(&src, &dst).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let data = RnsPoly::sample_uniform(&src, Representation::Coefficient, &mut rng);
        group.bench_with_input(BenchmarkId::new("fast", limbs), &limbs, |b, _| {
            b.iter(|| conv.convert(&data))
        });
    }
    group.finish();
}

fn bench_automorphism(c: &mut Criterion) {
    let n = 1usize << 13;
    let prime = bts_math::generate_ntt_primes(n, 50, 1)[0];
    let table = AutomorphismTable::from_rotation(n, 3).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let data: Vec<u64> = (0..n).map(|_| rng.gen_range(0..prime)).collect();
    c.bench_function("automorphism_permutation_n8192", |b| {
        b.iter(|| table.apply(&data, prime))
    });
}

criterion_group!(benches, bench_ntt, bench_bconv, bench_automorphism);
criterion_main!(benches);
