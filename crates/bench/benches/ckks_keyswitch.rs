//! Criterion benchmark of the key-switching inner loop (Fig. 3a's
//! iNTT → BConv → NTT → ⊙evk → ModDown pipeline) in isolation — the routine
//! both HMult and HRot funnel through and the one the PR-4 limb-parallel,
//! allocation-free refactor targets. Run with `BTS_THREADS=k` to measure the
//! limb fan-out at k worker threads (the default of 1 is the serial,
//! deterministic configuration CI uses).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

use bts_ckks::{CkksContext, Complex};

fn bench_keyswitch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckks_keyswitch");
    for (label, max_level, dnum) in [("L6_dnum2", 6usize, 2usize), ("L8_dnum3", 8, 3)] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let ctx = CkksContext::new_toy(1 << 11, max_level, dnum).unwrap();
        let (sk, keys) = ctx.generate_keys(&mut rng).unwrap();
        let msg: Vec<Complex> = (0..ctx.slots())
            .map(|i| Complex::new((i as f64 * 0.01).sin(), 0.0))
            .collect();
        let pt = ctx.encode(&msg).unwrap();
        let ct = ctx.encrypt(&pt, &sk, &mut rng).unwrap();
        // The polynomial fed to key_switch during HMult is c1², at top level.
        let d = ct.c1().mul(ct.c1()).unwrap();
        group.bench_with_input(BenchmarkId::new("n2048", label), &d, |b, d| {
            b.iter(|| ctx.key_switch(d, keys.relin()).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_keyswitch
}
criterion_main!(benches);
