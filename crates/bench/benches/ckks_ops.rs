//! Criterion benchmarks of the CKKS primitive HE ops (§2.3) on a toy ring —
//! the functional-reference counterparts of the ops the accelerator schedules.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

use bts_ckks::{CkksContext, Complex};

fn setup() -> (
    CkksContext,
    bts_ckks::SecretKey,
    bts_ckks::KeyBundle,
    bts_ckks::Ciphertext,
    bts_ckks::Ciphertext,
) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let ctx = CkksContext::new_toy(1 << 11, 6, 2).unwrap();
    let (sk, mut keys) = ctx.generate_keys(&mut rng).unwrap();
    ctx.add_rotation_keys(&sk, &mut keys, &[1, 4], &mut rng)
        .unwrap();
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new((i as f64 * 0.01).sin(), 0.0))
        .collect();
    let pt = ctx.encode(&msg).unwrap();
    let ct_a = ctx.encrypt(&pt, &sk, &mut rng).unwrap();
    let ct_b = ctx.encrypt(&pt, &sk, &mut rng).unwrap();
    (ctx, sk, keys, ct_a, ct_b)
}

fn bench_ckks_ops(c: &mut Criterion) {
    let (ctx, sk, keys, ct_a, ct_b) = setup();
    let eval = ctx.evaluator(&keys);
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new((i as f64 * 0.02).cos(), 0.0))
        .collect();

    c.bench_function("ckks_encode_n2048", |b| {
        b.iter(|| ctx.encode(&msg).unwrap())
    });
    c.bench_function("ckks_encrypt_n2048", |b| {
        let pt = ctx.encode(&msg).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| ctx.encrypt(&pt, &sk, &mut rng).unwrap())
    });
    c.bench_function("ckks_hadd_n2048", |b| {
        b.iter(|| eval.add(&ct_a, &ct_b).unwrap())
    });
    c.bench_function("ckks_hmult_n2048", |b| {
        b.iter(|| eval.mul(&ct_a, &ct_b).unwrap())
    });
    c.bench_function("ckks_hrot_n2048", |b| {
        b.iter(|| eval.rotate(&ct_a, 1).unwrap())
    });
    c.bench_function("ckks_rescale_n2048", |b| {
        let prod = eval.mul(&ct_a, &ct_b).unwrap();
        b.iter(|| eval.rescale(&prod).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ckks_ops
}
criterion_main!(benches);
