//! Criterion benchmark of the lazy-reduction BConv kernel against the
//! fully-reduced eager reference: the MMAU accumulation is the O(ℓ²·N) inner
//! loop of ModUp/ModDown, and deferring the Barrett reduction to one per
//! target element (instead of one per MAC) is the PR-4 claim this bench
//! quantifies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

use bts_math::{BaseConverter, Representation, RnsBasis, RnsPoly};

fn bench_bconv_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("bconv_lazy_vs_eager");
    let n = 1usize << 12;
    for limbs in [4usize, 8, 12] {
        let src = RnsBasis::generate(n, 45, limbs).unwrap();
        let dst = RnsBasis::generate(n, 47, limbs).unwrap();
        let conv = BaseConverter::new(&src, &dst).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let poly = RnsPoly::sample_uniform(&src, Representation::Coefficient, &mut rng);
        group.bench_with_input(BenchmarkId::new("lazy", limbs), &limbs, |b, _| {
            b.iter(|| conv.convert(&poly))
        });
        group.bench_with_input(BenchmarkId::new("eager", limbs), &limbs, |b, _| {
            b.iter(|| conv.convert_eager(&poly, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bconv_modes);
criterion_main!(benches);
