//! # bts-fault
//!
//! Seeded, deterministic fault injection for the BTS serving stack.
//!
//! Every layer above the cost model assumes a perfect world unless told
//! otherwise; this crate is how it gets told otherwise. A [`FaultPlan`]
//! describes, in *simulated* time, everything that goes wrong during one run:
//!
//! * **chip failures** ([`ChipFailure`]) — a chip dies at a given instant and
//!   never comes back; the cluster layer migrates its queued and in-flight
//!   jobs to the survivors;
//! * **transient job faults** — a per-execution fault probability, decided
//!   deterministically per `(job, attempt)` so the decision does not depend
//!   on scheduling order; the serving layer redrives faulted jobs under a
//!   [`RetryPolicy`] (BASALISC-style conservative redrive: the faulted
//!   attempt consumes its full service time);
//! * **link degradation** ([`LinkDegradation`]) — windows of simulated time
//!   during which the cluster interconnect delivers only a fraction of its
//!   bandwidth.
//!
//! Plans are plain data: built explicitly with the `with_*` builders, or
//! generated reproducibly from a seed with [`FaultPlan::random`] (vendored
//! `StdRng`, so one seed pins one plan across platforms and PRs). The same
//! plan over the same job stream always yields bitwise-identical reports and
//! telemetry — the property suite (`tests/property_fault.rs`) holds the repo
//! to that.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One chip dying at a simulated instant, permanently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipFailure {
    /// Index of the chip within the cluster spec.
    pub chip: usize,
    /// When the chip fails, in seconds from the start of the run. Work that
    /// finishes strictly after this instant on the chip never completes.
    pub at_seconds: f64,
}

/// A window of simulated time during which the interconnect delivers only
/// `bandwidth_factor` of its nominal bandwidth (fixed latency unchanged).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    /// Window start, seconds (inclusive).
    pub from_seconds: f64,
    /// Window end, seconds (exclusive).
    pub until_seconds: f64,
    /// Remaining bandwidth fraction in `(0, 1]`; overlapping windows
    /// multiply.
    pub bandwidth_factor: f64,
}

/// Why a fault plan is rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// A chip failure names a chip the cluster does not have.
    ChipOutOfRange {
        /// The offending chip index.
        chip: usize,
        /// Number of chips the plan was validated against.
        chips: usize,
    },
    /// A failure or degradation timestamp is negative or non-finite.
    InvalidTime {
        /// The rejected timestamp.
        seconds: f64,
    },
    /// The transient fault rate is outside `[0, 1)`.
    InvalidRate {
        /// The rejected rate.
        rate: f64,
    },
    /// A degradation window is empty, inverted, or has a factor outside
    /// `(0, 1]`.
    InvalidWindow {
        /// Window start.
        from_seconds: f64,
        /// Window end.
        until_seconds: f64,
        /// Window bandwidth factor.
        bandwidth_factor: f64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::ChipOutOfRange { chip, chips } => {
                write!(
                    f,
                    "fault plan kills chip {chip} but the fleet has {chips} chips"
                )
            }
            FaultError::InvalidTime { seconds } => {
                write!(f, "fault time {seconds} must be finite and ≥ 0")
            }
            FaultError::InvalidRate { rate } => {
                write!(f, "transient fault rate {rate} must be in [0, 1)")
            }
            FaultError::InvalidWindow {
                from_seconds,
                until_seconds,
                bandwidth_factor,
            } => write!(
                f,
                "degradation window [{from_seconds}, {until_seconds}) x{bandwidth_factor} is \
                 malformed (need from < until, factor in (0, 1])"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// Everything that goes wrong during one simulated run, as plain data.
///
/// The default plan is fault-free; layers given a fault-free plan behave
/// bit-for-bit as if no plan existed at all.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-`(job, attempt)` transient-fault decisions.
    pub seed: u64,
    /// Probability in `[0, 1)` that any single job execution faults.
    pub transient_fault_rate: f64,
    /// Permanent chip failures, in no particular order.
    pub chip_failures: Vec<ChipFailure>,
    /// Interconnect brown-out windows.
    pub link_degradations: Vec<LinkDegradation>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: nothing fails, nothing degrades.
    pub fn none() -> Self {
        Self {
            seed: 0,
            transient_fault_rate: 0.0,
            chip_failures: Vec::new(),
            link_degradations: Vec::new(),
        }
    }

    /// Whether this plan injects anything at all.
    pub fn is_fault_free(&self) -> bool {
        self.transient_fault_rate <= 0.0
            && self.chip_failures.is_empty()
            && self.link_degradations.is_empty()
    }

    /// Returns a copy with a different transient-fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a per-execution transient fault probability.
    pub fn with_transient_rate(mut self, rate: f64) -> Self {
        self.transient_fault_rate = rate;
        self
    }

    /// Returns a copy with one more chip failure.
    pub fn with_chip_failure(mut self, chip: usize, at_seconds: f64) -> Self {
        self.chip_failures.push(ChipFailure { chip, at_seconds });
        self
    }

    /// Returns a copy with one more link-degradation window.
    pub fn with_link_degradation(
        mut self,
        from_seconds: f64,
        until_seconds: f64,
        bandwidth_factor: f64,
    ) -> Self {
        self.link_degradations.push(LinkDegradation {
            from_seconds,
            until_seconds,
            bandwidth_factor,
        });
        self
    }

    /// A reproducible random plan over a `chips`-chip fleet and a
    /// `horizon_seconds` run: each chip fails with probability 0.3 at a
    /// uniform time inside the horizon, the transient rate is uniform in
    /// `[0, 0.05)`, and with probability 0.5 one degradation window covers a
    /// random sub-interval at half bandwidth. One seed pins one plan.
    ///
    /// # Panics
    ///
    /// Panics if `horizon_seconds` is not finite and positive.
    pub fn random(seed: u64, chips: usize, horizon_seconds: f64) -> Self {
        assert!(
            horizon_seconds.is_finite() && horizon_seconds > 0.0,
            "fault horizon must be finite and positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = Self::none().with_seed(seed);
        for chip in 0..chips {
            let dies: f64 = rng.gen();
            let at: f64 = rng.gen::<f64>() * horizon_seconds;
            if dies < 0.3 {
                plan.chip_failures.push(ChipFailure {
                    chip,
                    at_seconds: at,
                });
            }
        }
        plan.transient_fault_rate = rng.gen::<f64>() * 0.05;
        let degrade: f64 = rng.gen();
        let a = rng.gen::<f64>() * horizon_seconds;
        let b = rng.gen::<f64>() * horizon_seconds;
        if degrade < 0.5 && a != b {
            plan.link_degradations.push(LinkDegradation {
                from_seconds: a.min(b),
                until_seconds: a.max(b),
                bandwidth_factor: 0.5,
            });
        }
        plan
    }

    /// Earliest failure time of `chip`, if the plan kills it.
    pub fn failure_of(&self, chip: usize) -> Option<f64> {
        self.chip_failures
            .iter()
            .filter(|f| f.chip == chip)
            .map(|f| f.at_seconds)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.min(t))))
    }

    /// Deterministically decides whether execution `attempt` of `job`
    /// faults. The decision is a pure function of `(seed, job, attempt)` —
    /// it does not depend on when or where the attempt runs, so retries and
    /// migrations cannot perturb other jobs' fault draws.
    pub fn transient_faults(&self, job: u64, attempt: u32) -> bool {
        if self.transient_fault_rate <= 0.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, job, attempt));
        rng.gen::<f64>() < self.transient_fault_rate
    }

    /// Interconnect bandwidth fraction available at simulated time `t`:
    /// the product of every degradation window covering `t` (1.0 outside
    /// all windows).
    pub fn bandwidth_factor_at(&self, t: f64) -> f64 {
        self.link_degradations
            .iter()
            .filter(|w| w.from_seconds <= t && t < w.until_seconds)
            .map(|w| w.bandwidth_factor)
            .product()
    }

    /// Checks the plan against a fleet of `chips` chips.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: chip index in range, all times
    /// finite and non-negative, rate in `[0, 1)`, windows non-empty with
    /// factors in `(0, 1]`.
    pub fn validate(&self, chips: usize) -> Result<(), FaultError> {
        if !(0.0..1.0).contains(&self.transient_fault_rate) {
            return Err(FaultError::InvalidRate {
                rate: self.transient_fault_rate,
            });
        }
        for failure in &self.chip_failures {
            if failure.chip >= chips {
                return Err(FaultError::ChipOutOfRange {
                    chip: failure.chip,
                    chips,
                });
            }
            if !failure.at_seconds.is_finite() || failure.at_seconds < 0.0 {
                return Err(FaultError::InvalidTime {
                    seconds: failure.at_seconds,
                });
            }
        }
        for w in &self.link_degradations {
            let times_ok = w.from_seconds.is_finite()
                && w.until_seconds.is_finite()
                && w.from_seconds >= 0.0
                && w.from_seconds < w.until_seconds;
            let factor_ok = w.bandwidth_factor.is_finite()
                && w.bandwidth_factor > 0.0
                && w.bandwidth_factor <= 1.0;
            if !times_ok || !factor_ok {
                return Err(FaultError::InvalidWindow {
                    from_seconds: w.from_seconds,
                    until_seconds: w.until_seconds,
                    bandwidth_factor: w.bandwidth_factor,
                });
            }
        }
        Ok(())
    }
}

/// How a layer redrives work that faulted or was interrupted: a budget of
/// executions per job and a capped exponential backoff in *simulated* time
/// between them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum executions of one job (first attempt included). 1 means no
    /// retries at all.
    pub max_attempts: u32,
    /// Backoff before the first retry, seconds.
    pub backoff_base_seconds: f64,
    /// Backoff ceiling, seconds.
    pub backoff_cap_seconds: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff_base_seconds: 1e-3,
            backoff_cap_seconds: 64e-3,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no backoff.
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            backoff_base_seconds: 0.0,
            backoff_cap_seconds: 0.0,
        }
    }

    /// Simulated-time delay before retry number `retry` (1-based):
    /// `min(cap, base · 2^(retry−1))`. Retry 0 (the first attempt) waits
    /// nothing.
    pub fn backoff_seconds(&self, retry: u32) -> f64 {
        if retry == 0 {
            return 0.0;
        }
        let doubled = self.backoff_base_seconds
            * f64::from(u32::checked_pow(2, retry - 1).unwrap_or(u32::MAX));
        doubled.min(self.backoff_cap_seconds)
    }
}

/// Mixes `(seed, job, attempt)` into one RNG seed (splitmix64 finalizer), so
/// every `(job, attempt)` pair gets an independent, order-free fault draw.
fn mix(seed: u64, job: u64, attempt: u32) -> u64 {
    let mut z = seed
        ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_fault_free_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_fault_free());
        plan.validate(0).unwrap();
        assert_eq!(plan.failure_of(0), None);
        assert!(!plan.transient_faults(0, 0));
        assert_eq!(plan.bandwidth_factor_at(1.0), 1.0);
    }

    #[test]
    fn random_plans_are_reproducible_and_seed_sensitive() {
        let a = FaultPlan::random(7, 4, 0.5);
        let b = FaultPlan::random(7, 4, 0.5);
        assert_eq!(a, b);
        a.validate(4).unwrap();
        // Some seed in a small range must differ (chip kills are Bernoulli).
        let differs = (0..16u64).any(|s| FaultPlan::random(s, 4, 0.5) != a);
        assert!(differs, "random plans look seed-insensitive");
    }

    #[test]
    fn transient_draws_are_per_attempt_and_order_free() {
        let plan = FaultPlan::none().with_seed(11).with_transient_rate(0.5);
        // Same (job, attempt) always draws the same answer...
        for job in 0..50u64 {
            for attempt in 0..3u32 {
                assert_eq!(
                    plan.transient_faults(job, attempt),
                    plan.transient_faults(job, attempt)
                );
            }
        }
        // ...and at rate 0.5 both outcomes occur across jobs.
        let faults = (0..100u64).filter(|&j| plan.transient_faults(j, 0)).count();
        assert!(faults > 20 && faults < 80, "rate 0.5 drew {faults}/100");
        // Attempts draw independently: some job faults on attempt 0 but not 1.
        assert!((0..100u64).any(|j| plan.transient_faults(j, 0) != plan.transient_faults(j, 1)));
    }

    #[test]
    fn failure_of_takes_the_earliest_kill() {
        let plan = FaultPlan::none()
            .with_chip_failure(1, 0.4)
            .with_chip_failure(1, 0.2)
            .with_chip_failure(0, 0.9);
        assert_eq!(plan.failure_of(1), Some(0.2));
        assert_eq!(plan.failure_of(0), Some(0.9));
        assert_eq!(plan.failure_of(2), None);
        plan.validate(2).unwrap();
        assert!(matches!(
            plan.validate(1),
            Err(FaultError::ChipOutOfRange { chip: 1, chips: 1 })
        ));
    }

    #[test]
    fn degradation_windows_multiply_and_validate() {
        let plan = FaultPlan::none()
            .with_link_degradation(0.0, 1.0, 0.5)
            .with_link_degradation(0.5, 2.0, 0.4);
        assert!((plan.bandwidth_factor_at(0.25) - 0.5).abs() < 1e-15);
        assert!((plan.bandwidth_factor_at(0.75) - 0.2).abs() < 1e-15);
        assert!((plan.bandwidth_factor_at(1.5) - 0.4).abs() < 1e-15);
        assert_eq!(plan.bandwidth_factor_at(3.0), 1.0);
        plan.validate(0).unwrap();

        let empty = FaultPlan::none().with_link_degradation(1.0, 1.0, 0.5);
        assert!(matches!(
            empty.validate(0),
            Err(FaultError::InvalidWindow { .. })
        ));
        let over = FaultPlan::none().with_link_degradation(0.0, 1.0, 1.5);
        assert!(over.validate(0).is_err());
        let rate = FaultPlan::none().with_transient_rate(1.0);
        assert!(matches!(
            rate.validate(0),
            Err(FaultError::InvalidRate { rate: r }) if r == 1.0
        ));
        let when = FaultPlan::none().with_chip_failure(0, f64::NAN);
        assert!(matches!(
            when.validate(1),
            Err(FaultError::InvalidTime { .. })
        ));
    }

    #[test]
    fn backoff_doubles_up_to_the_cap() {
        let retry = RetryPolicy {
            max_attempts: 8,
            backoff_base_seconds: 1e-3,
            backoff_cap_seconds: 5e-3,
        };
        assert_eq!(retry.backoff_seconds(0), 0.0);
        assert!((retry.backoff_seconds(1) - 1e-3).abs() < 1e-18);
        assert!((retry.backoff_seconds(2) - 2e-3).abs() < 1e-18);
        assert!((retry.backoff_seconds(3) - 4e-3).abs() < 1e-18);
        assert!((retry.backoff_seconds(4) - 5e-3).abs() < 1e-18);
        assert!((retry.backoff_seconds(40) - 5e-3).abs() < 1e-18);
        assert_eq!(RetryPolicy::no_retries().max_attempts, 1);
    }

    #[test]
    fn errors_render_their_context() {
        let e = FaultError::ChipOutOfRange { chip: 5, chips: 4 };
        assert!(e.to_string().contains("chip 5"));
        assert!(FaultError::InvalidRate { rate: 2.0 }
            .to_string()
            .contains("[0, 1)"));
    }
}
