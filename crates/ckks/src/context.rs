use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rand::Rng;

use bts_math::{
    sample_gaussian, sample_ternary, AutomorphismTable, BaseConverter, BconvScratch,
    Representation, RnsBasis, RnsPoly, ShoupMul, TERNARY_HAMMING_DENSE,
};
use bts_params::CkksInstance;

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::encoding::{CkksEncoder, Complex};
use crate::error::CkksError;
use crate::evaluator::Evaluator;
use crate::keys::{EvaluationKey, KeyBundle, PublicKey, SecretKey};

/// Standard deviation of the RLWE error distribution.
const ERROR_SIGMA: f64 = 3.2;

/// Reusable working memory for one key-switch invocation: the extended
/// residue matrix, the `u128` MAC accumulators for the `(b, a)` pair, the
/// BConv scratch and the mod-down buffers. Pooled on the context so steady
/// state performs no heap allocation per HMult/HRot.
#[derive(Debug, Default)]
struct KsScratch {
    bconv: BconvScratch,
    /// Extended polynomial, `(ℓ+1+k) · N` words, limb-major on the ks basis.
    ext: Vec<u64>,
    /// Deferred-reduction accumulators for the `b` / `a` contributions.
    acc_b: Vec<u128>,
    acc_a: Vec<u128>,
    /// Mod-down: special limbs (coefficient domain) and converted q limbs.
    p_part: Vec<u64>,
    conv: Vec<u64>,
}

/// Lazily-memoized key-switching machinery shared by all clones of a context:
/// ModUp converters per `(level, slice)`, ModDown converters per level, and a
/// pool of [`KsScratch`] buffers. Interior mutability keeps
/// [`CkksContext::key_switch`] callable through `&self`.
#[derive(Debug, Default)]
struct KsCache {
    modup: Mutex<HashMap<(usize, usize), Arc<BaseConverter>>>,
    moddown: Mutex<HashMap<usize, Arc<BaseConverter>>>,
    scratch: Mutex<Vec<KsScratch>>,
}

/// A fully instantiated Full-RNS CKKS context: moduli chains, NTT tables,
/// encoder and the key-switching machinery.
///
/// The context owns everything that depends only on the parameter set; keys
/// and ciphertexts reference it. Ring degrees up to 2^13 are practical for the
/// functional software path (tests, examples); the accelerator simulator works
/// directly on the parameter model for the paper's 2^17 instances.
#[derive(Debug, Clone)]
pub struct CkksContext {
    degree: usize,
    max_level: usize,
    dnum: usize,
    scale: f64,
    q_basis: RnsBasis,
    p_basis: RnsBasis,
    key_basis: RnsBasis,
    encoder: CkksEncoder,
    /// `[P]_{q_i}` for every ciphertext modulus.
    p_mod_q: Vec<u64>,
    /// `[P^{-1}]_{q_i}` for every ciphertext modulus, Shoup-precomputed for
    /// the mod-down scaling pass.
    p_inv_mod_q: Vec<ShoupMul>,
    /// `[q_ℓ^{-1}]_{q_i}` for every level ℓ ≥ 1 and limb i < ℓ: the HRescale
    /// constants, precomputed once instead of re-inverted per rescale call.
    rescale_inv: Vec<Vec<u64>>,
    /// Shared key-switch converter cache + scratch pool.
    ks: Arc<KsCache>,
}

impl CkksContext {
    /// Builds a context with explicit prime bit-sizes.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::InvalidParameters`] for inconsistent requests and
    /// propagates prime-generation failures.
    pub fn new(
        degree: usize,
        max_level: usize,
        dnum: usize,
        log_q0: u32,
        log_scale: u32,
        log_special: u32,
    ) -> crate::Result<Self> {
        if dnum == 0 || dnum > max_level + 1 {
            return Err(CkksError::InvalidParameters(format!(
                "dnum {dnum} must be in [1, L+1]"
            )));
        }
        let num_special = (max_level + 1).div_ceil(dnum);
        // Generate every prime from a single pool so the ciphertext and
        // special moduli are guaranteed distinct even when their bit sizes
        // coincide; q0 is the largest.
        let mut bit_sizes = vec![log_q0];
        bit_sizes.extend(std::iter::repeat_n(log_scale, max_level));
        bit_sizes.extend(std::iter::repeat_n(log_special, num_special));
        let key_basis =
            RnsBasis::generate_with_bit_sizes(degree, &bit_sizes).map_err(CkksError::Math)?;
        let q_basis = key_basis.prefix(max_level + 1);
        let p_basis =
            key_basis.select(&((max_level + 1)..(max_level + 1 + num_special)).collect::<Vec<_>>());
        let encoder = CkksEncoder::new(degree)?;
        let p_mod_q: Vec<u64> = (0..q_basis.len())
            .map(|i| p_basis.product_mod(q_basis.modulus(i)))
            .collect();
        let p_inv_mod_q: Vec<ShoupMul> = (0..q_basis.len())
            .map(|i| {
                let qi = q_basis.modulus(i);
                Ok(qi.shoup(qi.inv(p_mod_q[i]).map_err(CkksError::Math)?))
            })
            .collect::<crate::Result<_>>()?;
        let rescale_inv: Vec<Vec<u64>> = (0..=max_level)
            .map(|l| {
                if l == 0 {
                    return Ok(Vec::new());
                }
                let q_last = q_basis.modulus(l).value();
                (0..l)
                    .map(|i| {
                        let qi = q_basis.modulus(i);
                        qi.inv(qi.reduce(q_last)).map_err(CkksError::Math)
                    })
                    .collect()
            })
            .collect::<crate::Result<_>>()?;
        Ok(Self {
            degree,
            max_level,
            dnum,
            scale: 2f64.powi(log_scale as i32),
            q_basis,
            p_basis,
            key_basis,
            encoder,
            p_mod_q,
            p_inv_mod_q,
            rescale_inv,
            ks: Arc::new(KsCache::default()),
        })
    }

    /// A small, insecure context for tests and examples (40-bit scale).
    ///
    /// # Errors
    ///
    /// Propagates [`CkksContext::new`] failures.
    pub fn new_toy(degree: usize, max_level: usize, dnum: usize) -> crate::Result<Self> {
        Self::new(degree, max_level, dnum, 60, 40, 60)
    }

    /// Builds a context from a [`CkksInstance`] parameter description.
    ///
    /// Only practical for moderate ring degrees; the paper-scale 2^17
    /// instances are handled analytically by the simulator rather than
    /// instantiated in software.
    ///
    /// # Errors
    ///
    /// Propagates [`CkksContext::new`] failures.
    pub fn from_instance(instance: &CkksInstance) -> crate::Result<Self> {
        Self::new(
            instance.n(),
            instance.max_level(),
            instance.dnum(),
            instance.log_q0(),
            instance.log_scale(),
            instance.log_special(),
        )
    }

    /// Ring degree N.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of message slots (N/2).
    pub fn slots(&self) -> usize {
        self.degree / 2
    }

    /// Maximum multiplicative level L.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Decomposition number dnum.
    pub fn dnum(&self) -> usize {
        self.dnum
    }

    /// Number of special primes k.
    pub fn num_special(&self) -> usize {
        self.p_basis.len()
    }

    /// Default encoding scale Δ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The ciphertext-modulus basis `{q_0, …, q_L}`.
    pub fn q_basis(&self) -> &RnsBasis {
        &self.q_basis
    }

    /// The special-modulus basis `{p_0, …, p_{k-1}}`.
    pub fn p_basis(&self) -> &RnsBasis {
        &self.p_basis
    }

    /// The encoder.
    pub fn encoder(&self) -> &CkksEncoder {
        &self.encoder
    }

    /// The ciphertext basis truncated to level ℓ (ℓ+1 limbs).
    pub fn basis_at_level(&self, level: usize) -> RnsBasis {
        self.q_basis.prefix(level + 1)
    }

    /// The prime modulus q_i.
    pub fn q_modulus(&self, i: usize) -> u64 {
        self.q_basis.modulus(i).value()
    }

    /// The precomputed HRescale constants `[q_ℓ^{-1}]_{q_i}` (`i < ℓ`) for
    /// dropping from level `level`.
    pub(crate) fn rescale_constants(&self, level: usize) -> &[u64] {
        &self.rescale_inv[level]
    }

    /// Creates an evaluator bound to this context and a key bundle.
    pub fn evaluator<'a>(&'a self, keys: &'a KeyBundle) -> Evaluator<'a> {
        Evaluator::new(self, keys)
    }

    // ------------------------------------------------------------------
    // Encoding
    // ------------------------------------------------------------------

    /// Encodes a complex message at the maximum level and default scale.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors.
    pub fn encode(&self, message: &[Complex]) -> crate::Result<Plaintext> {
        self.encode_at(message, self.max_level, self.scale)
    }

    /// Encodes a real-valued message at the maximum level and default scale.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors.
    pub fn encode_real(&self, message: &[f64]) -> crate::Result<Plaintext> {
        let msg: Vec<Complex> = message.iter().map(|&x| Complex::new(x, 0.0)).collect();
        self.encode(&msg)
    }

    /// Encodes a message at an explicit level and scale.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors and rejects out-of-range levels.
    pub fn encode_at(
        &self,
        message: &[Complex],
        level: usize,
        scale: f64,
    ) -> crate::Result<Plaintext> {
        if level > self.max_level {
            return Err(CkksError::InvalidParameters(format!(
                "level {level} exceeds the maximum {}",
                self.max_level
            )));
        }
        let coeffs = self.encoder.encode_to_coefficients(message, scale)?;
        let signed: Vec<i64> = coeffs.iter().map(|&c| c as i64).collect();
        let mut poly = RnsPoly::from_signed_coefficients(&self.basis_at_level(level), &signed);
        poly.to_ntt();
        Ok(Plaintext::new(poly, level, scale))
    }

    /// Decodes a plaintext back to complex slots.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors.
    pub fn decode(&self, plaintext: &Plaintext) -> crate::Result<Vec<Complex>> {
        let limbs_to_use = plaintext.poly.limb_count().min(2);
        let selected: Vec<usize> = (0..limbs_to_use).collect();
        let reduced = plaintext.poly.select_limbs(&selected);
        let signed = reduced.to_signed_coefficients();
        let coeffs: Vec<f64> = signed.iter().map(|&c| c as f64).collect();
        self.encoder
            .decode_from_coefficients(&coeffs, plaintext.scale)
    }

    // ------------------------------------------------------------------
    // Key generation
    // ------------------------------------------------------------------

    /// Samples a fresh secret key (dense ternary, §2.5 non-sparse setting).
    pub fn gen_secret_key<R: Rng + ?Sized>(&self, rng: &mut R) -> SecretKey {
        let coefficients = sample_ternary(rng, self.degree, TERNARY_HAMMING_DENSE);
        let mut poly = RnsPoly::from_signed_coefficients(&self.key_basis, &coefficients);
        poly.to_ntt();
        SecretKey { coefficients, poly }
    }

    /// Samples a sparse ternary secret key with exactly `hamming_weight`
    /// non-zero coefficients. Sparse secrets keep the ModRaise overflow small,
    /// which is what shallow bootstrapping configurations rely on (§2.4, \[17\]).
    pub fn gen_sparse_secret_key<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        hamming_weight: usize,
    ) -> SecretKey {
        let coefficients = sample_ternary(rng, self.degree, hamming_weight);
        let mut poly = RnsPoly::from_signed_coefficients(&self.key_basis, &coefficients);
        poly.to_ntt();
        SecretKey { coefficients, poly }
    }

    /// Derives the public encryption key from a secret key.
    pub fn gen_public_key<R: Rng + ?Sized>(&self, sk: &SecretKey, rng: &mut R) -> PublicKey {
        let basis = self.q_basis.clone();
        let s_q = sk.poly.select_limbs(&(0..basis.len()).collect::<Vec<_>>());
        let a = RnsPoly::sample_uniform(&basis, Representation::Ntt, rng);
        let mut e = RnsPoly::from_signed_coefficients(
            &basis,
            &sample_gaussian(rng, self.degree, ERROR_SIGMA),
        );
        e.to_ntt();
        let p0 = a
            .mul(&s_q)
            .expect("same basis")
            .neg()
            .add(&e)
            .expect("same basis");
        PublicKey { p0, p1: a }
    }

    /// Generates a key-switching key that re-encrypts products of `target_key`
    /// under the secret key `sk` (generalized dnum decomposition, §2.5).
    fn gen_switching_key<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        target_key: &RnsPoly,
        rng: &mut R,
    ) -> EvaluationKey {
        let k = self.num_special();
        let total_q = self.max_level + 1;
        let mut slices = Vec::with_capacity(self.dnum);
        for j in 0..self.dnum {
            let lo = j * k;
            let hi = ((j + 1) * k).min(total_q);
            if lo >= hi {
                break;
            }
            let a_j = RnsPoly::sample_uniform(&self.key_basis, Representation::Ntt, rng);
            let mut e_j = RnsPoly::from_signed_coefficients(
                &self.key_basis,
                &sample_gaussian(rng, self.degree, ERROR_SIGMA),
            );
            e_j.to_ntt();
            // Per-limb gadget factor: P mod q_i inside the slice, 0 elsewhere.
            let constants: Vec<u64> = (0..self.key_basis.len())
                .map(|i| {
                    if i >= lo && i < hi {
                        self.p_mod_q[i]
                    } else {
                        0
                    }
                })
                .collect();
            let gadget = target_key.mul_constants(&constants);
            let b_j = a_j
                .mul(&sk.poly)
                .expect("same basis")
                .neg()
                .add(&e_j)
                .expect("same basis")
                .add(&gadget)
                .expect("same basis");
            slices.push((b_j, a_j));
        }
        EvaluationKey { slices }
    }

    /// Generates the relinearization key (target key `s²`).
    pub fn gen_relin_key<R: Rng + ?Sized>(&self, sk: &SecretKey, rng: &mut R) -> EvaluationKey {
        let s_squared = sk.poly.mul(&sk.poly).expect("same basis");
        self.gen_switching_key(sk, &s_squared, rng)
    }

    /// Generates a rotation key for rotation amount `r` (target key `σ_r(s)`).
    ///
    /// # Errors
    ///
    /// Propagates Galois-element validation errors.
    pub fn gen_rotation_key<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        rotation: i64,
        rng: &mut R,
    ) -> crate::Result<EvaluationKey> {
        let table = AutomorphismTable::from_rotation(self.degree, rotation)?;
        let rotated = sk.poly.automorphism(&table);
        Ok(self.gen_switching_key(sk, &rotated, rng))
    }

    /// Generates the conjugation key (target key `σ_{-1}(s)`).
    ///
    /// # Errors
    ///
    /// Propagates Galois-element validation errors.
    pub fn gen_conjugation_key<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        rng: &mut R,
    ) -> crate::Result<EvaluationKey> {
        let table =
            AutomorphismTable::new(self.degree, bts_math::galois_element(0, self.degree, true))?;
        let conjugated = sk.poly.automorphism(&table);
        Ok(self.gen_switching_key(sk, &conjugated, rng))
    }

    /// One-call key generation: secret key plus a bundle containing the public
    /// and relinearization keys (rotation keys are added on demand).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for future validation.
    pub fn generate_keys<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> crate::Result<(SecretKey, KeyBundle)> {
        let sk = self.gen_secret_key(rng);
        let public = self.gen_public_key(&sk, rng);
        let relin = self.gen_relin_key(&sk, rng);
        Ok((
            sk,
            KeyBundle {
                public,
                relin,
                rotations: std::collections::HashMap::new(),
                conjugation: None,
            },
        ))
    }

    /// Builds a key bundle (public + relinearization keys) for an externally
    /// generated secret key, e.g. a sparse secret used for bootstrapping.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for API stability.
    pub fn generate_bundle_for<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        rng: &mut R,
    ) -> crate::Result<KeyBundle> {
        Ok(KeyBundle {
            public: self.gen_public_key(sk, rng),
            relin: self.gen_relin_key(sk, rng),
            rotations: std::collections::HashMap::new(),
            conjugation: None,
        })
    }

    /// Generates rotation keys for a set of rotation amounts and adds them to
    /// the bundle, plus the conjugation key.
    ///
    /// # Errors
    ///
    /// Propagates rotation-key generation failures.
    pub fn add_rotation_keys<R: Rng + ?Sized>(
        &self,
        sk: &SecretKey,
        bundle: &mut KeyBundle,
        rotations: &[i64],
        rng: &mut R,
    ) -> crate::Result<()> {
        for &r in rotations {
            if bundle.rotation(r).is_none() {
                let key = self.gen_rotation_key(sk, r, rng)?;
                bundle.insert_rotation(r, key);
            }
        }
        if bundle.conjugation().is_none() {
            bundle.set_conjugation(self.gen_conjugation_key(sk, rng)?);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Encryption / decryption
    // ------------------------------------------------------------------

    /// Encrypts a plaintext under the secret key (symmetric encryption).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for API stability.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        plaintext: &Plaintext,
        sk: &SecretKey,
        rng: &mut R,
    ) -> crate::Result<Ciphertext> {
        let level = plaintext.level;
        let basis = self.basis_at_level(level);
        let s_q = sk.poly.select_limbs(&(0..=level).collect::<Vec<_>>());
        let c1 = RnsPoly::sample_uniform(&basis, Representation::Ntt, rng);
        let mut e = RnsPoly::from_signed_coefficients(
            &basis,
            &sample_gaussian(rng, self.degree, ERROR_SIGMA),
        );
        e.to_ntt();
        let c0 = c1
            .mul(&s_q)
            .expect("same basis")
            .neg()
            .add(&e)
            .expect("same basis")
            .add(&plaintext.poly)
            .expect("same basis");
        Ok(Ciphertext::new(c0, c1, level, plaintext.scale))
    }

    /// Encrypts a plaintext under the public key.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for API stability.
    pub fn encrypt_public<R: Rng + ?Sized>(
        &self,
        plaintext: &Plaintext,
        keys: &KeyBundle,
        rng: &mut R,
    ) -> crate::Result<Ciphertext> {
        let level = plaintext.level;
        let idx: Vec<usize> = (0..=level).collect();
        let p0 = keys.public.p0.select_limbs(&idx);
        let p1 = keys.public.p1.select_limbs(&idx);
        let basis = self.basis_at_level(level);
        let mut v = RnsPoly::from_signed_coefficients(
            &basis,
            &sample_ternary(rng, self.degree, TERNARY_HAMMING_DENSE),
        );
        v.to_ntt();
        let mut e0 = RnsPoly::from_signed_coefficients(
            &basis,
            &sample_gaussian(rng, self.degree, ERROR_SIGMA),
        );
        e0.to_ntt();
        let mut e1 = RnsPoly::from_signed_coefficients(
            &basis,
            &sample_gaussian(rng, self.degree, ERROR_SIGMA),
        );
        e1.to_ntt();
        let c0 = v
            .mul(&p0)
            .expect("same basis")
            .add(&e0)
            .expect("same basis")
            .add(&plaintext.poly)
            .expect("same basis");
        let c1 = v
            .mul(&p1)
            .expect("same basis")
            .add(&e1)
            .expect("same basis");
        Ok(Ciphertext::new(c0, c1, level, plaintext.scale))
    }

    /// Decrypts a ciphertext with the secret key.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; kept fallible for API stability.
    pub fn decrypt(&self, ciphertext: &Ciphertext, sk: &SecretKey) -> crate::Result<Plaintext> {
        let level = ciphertext.level;
        let s_q = sk.poly.select_limbs(&(0..=level).collect::<Vec<_>>());
        let m = ciphertext
            .c1
            .mul(&s_q)
            .expect("same basis")
            .add(&ciphertext.c0)
            .expect("same basis");
        Ok(Plaintext::new(m, level, ciphertext.scale))
    }

    // ------------------------------------------------------------------
    // Key switching (the core of HMult and HRot)
    // ------------------------------------------------------------------

    /// The memoized ModUp converter for decomposition slice `j` at `level`:
    /// slice base `{q_lo..q_hi}` → complement base (other q limbs, then the
    /// special limbs).
    fn modup_converter(&self, level: usize, j: usize) -> crate::Result<Arc<BaseConverter>> {
        if let Some(conv) = self.ks.modup.lock().expect("ks cache").get(&(level, j)) {
            return Ok(Arc::clone(conv));
        }
        let k = self.num_special();
        let lo = j * k;
        let hi = ((j + 1) * k).min(level + 1);
        let q_prefix = self.basis_at_level(level);
        let slice_basis = q_prefix.select(&(lo..hi).collect::<Vec<_>>());
        let complement_idx: Vec<usize> = (0..=level).filter(|i| *i < lo || *i >= hi).collect();
        let complement_basis = if complement_idx.is_empty() {
            self.p_basis.clone()
        } else {
            q_prefix
                .select(&complement_idx)
                .concat(&self.p_basis)
                .map_err(CkksError::Math)?
        };
        let conv =
            Arc::new(BaseConverter::new(&slice_basis, &complement_basis).map_err(CkksError::Math)?);
        self.ks
            .modup
            .lock()
            .expect("ks cache")
            .insert((level, j), Arc::clone(&conv));
        Ok(conv)
    }

    /// The memoized ModDown converter for `level`: special base → `{q_0..q_ℓ}`.
    fn moddown_converter(&self, level: usize) -> crate::Result<Arc<BaseConverter>> {
        if let Some(conv) = self.ks.moddown.lock().expect("ks cache").get(&level) {
            return Ok(Arc::clone(conv));
        }
        let conv = Arc::new(
            BaseConverter::new(&self.p_basis, &self.basis_at_level(level))
                .map_err(CkksError::Math)?,
        );
        self.ks
            .moddown
            .lock()
            .expect("ks cache")
            .insert(level, Arc::clone(&conv));
        Ok(conv)
    }

    /// Switches the polynomial `d` (NTT domain, level-ℓ ciphertext basis) from
    /// the key implicit in `evk` back to the canonical secret key, returning
    /// the `(b, a)` contribution pair on the same basis.
    ///
    /// This is the iNTT → BConv → NTT → ⊙evk → iNTT → BConv → NTT → SSA flow
    /// of Fig. 3(a), executed allocation-free on pooled scratch: each slice is
    /// staged inside one flat extended residue matrix (slice limbs copied into
    /// their ks-basis positions, ModUp writing the complement limbs straight
    /// into theirs), (i)NTT passes run limb-parallel, and the per-slice evk
    /// MACs accumulate in `u128` with a single Barrett reduction per element
    /// after the last slice.
    ///
    /// # Errors
    ///
    /// Propagates basis-construction failures.
    pub fn key_switch(
        &self,
        d: &RnsPoly,
        evk: &EvaluationKey,
    ) -> crate::Result<(RnsPoly, RnsPoly)> {
        let _span = bts_telemetry::span("ckks.key_switch");
        let level = d.limb_count() - 1;
        let k = self.num_special();
        let n = self.degree;
        let q_prefix = self.basis_at_level(level);
        let ks_basis = q_prefix.concat(&self.p_basis).map_err(CkksError::Math)?;
        let ext_limbs = level + 1 + k;
        // Indices of the live limbs inside the full key basis (q_0..q_L, p_*).
        let evk_indices: Vec<usize> = (0..=level)
            .chain(self.max_level + 1..self.max_level + 1 + k)
            .collect();
        // The u128 accumulators overflow after 2^(128 - 2·max_bits) MAC terms;
        // fold them with a reduction pass if the slice count could exceed that
        // (it never does for word-sized CKKS moduli, but guard anyway).
        let max_bits = (0..ks_basis.len())
            .map(|t| ks_basis.modulus(t).bits())
            .max()
            .unwrap_or(1);
        let fold_every = 1usize << 128u32.saturating_sub(2 * max_bits + 1).min(24);

        let num_slices = (level + 1).div_ceil(k).min(evk.slices.len());
        let mut scratch = self
            .ks
            .scratch
            .lock()
            .expect("scratch pool")
            .pop()
            .unwrap_or_default();
        scratch.ext.resize(ext_limbs * n, 0);
        scratch.acc_b.clear();
        scratch.acc_b.resize(ext_limbs * n, 0);
        scratch.acc_a.clear();
        scratch.acc_a.resize(ext_limbs * n, 0);

        for j in 0..num_slices {
            let lo = j * k;
            let hi = ((j + 1) * k).min(level + 1);
            // Stage the slice limbs at their ks-basis positions and iNTT them
            // in place (ModUp's iNTT), limb-parallel.
            scratch.ext[lo * n..hi * n].copy_from_slice(&d.data()[lo * n..hi * n]);
            bts_math::par::par_limbs(
                scratch.ext[lo * n..hi * n].chunks_exact_mut(n).collect(),
                |t, limb: &mut [u64]| self.q_basis.table(lo + t).inverse(limb),
            );
            // BConv the slice into the complement limbs of the same matrix.
            let converter = self.modup_converter(level, j)?;
            {
                let (left, rest) = scratch.ext.split_at_mut(lo * n);
                let (mid, right) = rest.split_at_mut((hi - lo) * n);
                {
                    let srcs: Vec<&[u64]> = mid.chunks_exact(n).collect();
                    let mut outs: Vec<&mut [u64]> = left
                        .chunks_exact_mut(n)
                        .chain(right.chunks_exact_mut(n))
                        .collect();
                    converter.convert_into(&srcs, &mut outs, false, &mut scratch.bconv);
                }
                // Restore the slice limbs from the NTT-domain input —
                // forward∘inverse is the identity bit-for-bit, so re-NTT-ing
                // the iNTT'd slice would only redo work — and forward-NTT
                // just the freshly converted complement limbs, limb-parallel.
                mid.copy_from_slice(&d.data()[lo * n..hi * n]);
                bts_math::par::par_limbs(
                    left.chunks_exact_mut(n)
                        .chain(right.chunks_exact_mut(n))
                        .collect(),
                    |t, limb: &mut [u64]| {
                        let idx = if t < lo { t } else { hi + (t - lo) };
                        ks_basis.table(idx).forward(limb);
                    },
                );
            }
            // MAC the slice against its evk pair with deferred reduction.
            let (evk_b, evk_a) = &evk.slices[j];
            let ext = &scratch.ext;
            let fold = (j + 1).is_multiple_of(fold_every);
            let rows: Vec<(&mut [u128], &mut [u128])> = scratch
                .acc_b
                .chunks_exact_mut(n)
                .zip(scratch.acc_a.chunks_exact_mut(n))
                .collect();
            bts_math::par::par_limbs(rows, |t, (row_b, row_a)| {
                let p = ks_basis.modulus(t);
                let ext_t = &ext[t * n..(t + 1) * n];
                let kb = evk_b.limb(evk_indices[t]);
                let ka = evk_a.limb(evk_indices[t]);
                for c in 0..n {
                    row_b[c] += ext_t[c] as u128 * kb[c] as u128;
                    row_a[c] += ext_t[c] as u128 * ka[c] as u128;
                    if fold {
                        row_b[c] = p.reduce_u128(row_b[c]) as u128;
                        row_a[c] = p.reduce_u128(row_a[c]) as u128;
                    }
                }
            });
        }

        // Single Barrett reduction per element closes the deferred MACs.
        let mut acc_b = RnsPoly::zero(&ks_basis, Representation::Ntt);
        let mut acc_a = RnsPoly::zero(&ks_basis, Representation::Ntt);
        let (accs_b, accs_a) = (&scratch.acc_b, &scratch.acc_a);
        bts_math::par::par_limbs(
            acc_b
                .data_mut()
                .chunks_exact_mut(n)
                .zip(acc_a.data_mut().chunks_exact_mut(n))
                .collect(),
            |t, (out_b, out_a): (&mut [u64], &mut [u64])| {
                let p = ks_basis.modulus(t);
                for c in 0..n {
                    out_b[c] = p.reduce_u128(accs_b[t * n + c]);
                    out_a[c] = p.reduce_u128(accs_a[t * n + c]);
                }
            },
        );

        let b = self.mod_down(&acc_b, level, &mut scratch)?;
        let a = self.mod_down(&acc_a, level, &mut scratch)?;
        self.ks.scratch.lock().expect("scratch pool").push(scratch);
        Ok((b, a))
    }

    /// Divides an extended-basis polynomial (level-ℓ q limbs followed by the k
    /// special limbs, NTT domain) by `P`, returning a level-ℓ polynomial.
    fn mod_down(
        &self,
        x: &RnsPoly,
        level: usize,
        scratch: &mut KsScratch,
    ) -> crate::Result<RnsPoly> {
        let k = self.num_special();
        let n = self.degree;
        let q_prefix = self.basis_at_level(level);
        // iNTT the special limbs into scratch.
        scratch.p_part.resize(k * n, 0);
        scratch
            .p_part
            .copy_from_slice(&x.data()[(level + 1) * n..(level + 1 + k) * n]);
        bts_math::par::par_limbs(
            scratch.p_part.chunks_exact_mut(n).collect(),
            |i, limb: &mut [u64]| self.p_basis.table(i).inverse(limb),
        );
        // BConv the P part down to the q base, then NTT it back.
        let converter = self.moddown_converter(level)?;
        scratch.conv.resize((level + 1) * n, 0);
        {
            let srcs: Vec<&[u64]> = scratch.p_part.chunks_exact(n).collect();
            let mut outs: Vec<&mut [u64]> = scratch.conv.chunks_exact_mut(n).collect();
            converter.convert_into(&srcs, &mut outs, false, &mut scratch.bconv);
        }
        bts_math::par::par_limbs(
            scratch.conv.chunks_exact_mut(n).collect(),
            |i, limb: &mut [u64]| self.q_basis.table(i).forward(limb),
        );
        // out_i = (x_i - conv_i) · P^{-1} mod q_i, fused in one pass.
        let mut out = RnsPoly::zero(&q_prefix, Representation::Ntt);
        let conv = &scratch.conv;
        bts_math::par::par_limbs(
            out.data_mut().chunks_exact_mut(n).collect(),
            |i, limb: &mut [u64]| {
                let qi = q_prefix.modulus(i);
                let p_inv = &self.p_inv_mod_q[i];
                let x_i = x.limb(i);
                let conv_i = &conv[i * n..(i + 1) * n];
                for (c, slot) in limb.iter_mut().enumerate() {
                    *slot = qi.mul_shoup(qi.sub(x_i[c], conv_i[c]), p_inv);
                }
            },
        );
        Ok(out)
    }
}
