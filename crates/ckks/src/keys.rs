use std::collections::HashMap;

use bts_math::RnsPoly;

/// The CKKS secret key: a dense ternary polynomial, kept both as signed
/// coefficients (to derive automorphism images during rotation-key generation)
/// and as an NTT-domain polynomial on the full key basis `Q ∪ P`.
#[derive(Clone)]
pub struct SecretKey {
    pub(crate) coefficients: Vec<i64>,
    pub(crate) poly: RnsPoly,
}

impl std::fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("SecretKey")
            .field("degree", &self.coefficients.len())
            .finish_non_exhaustive()
    }
}

impl SecretKey {
    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.coefficients.len()
    }
}

/// The public encryption key `(p0, p1) = (-a·s + e, a)` on the top-level
/// ciphertext basis.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) p0: RnsPoly,
    pub(crate) p1: RnsPoly,
}

/// A generalized key-switching key (an "evk" in the paper): `dnum` pairs of
/// polynomials on the extended basis `Q ∪ P`, one pair per decomposition slice
/// (§2.5). The same structure serves as the relinearization key (target key
/// `s²`), rotation keys (`σ_r(s)`) and the conjugation key.
#[derive(Debug, Clone)]
pub struct EvaluationKey {
    /// `(b_j, a_j)` per decomposition slice.
    pub(crate) slices: Vec<(RnsPoly, RnsPoly)>,
}

impl EvaluationKey {
    /// Number of decomposition slices (dnum).
    pub fn dnum(&self) -> usize {
        self.slices.len()
    }

    /// Total size in bytes: `2 · dnum · N · (k + L + 1)` words, the quantity
    /// whose streaming dominates HMult/HRot in the paper's analysis.
    pub fn size_bytes(&self) -> u64 {
        self.slices
            .iter()
            .map(|(b, a)| ((b.limb_count() + a.limb_count()) * b.degree()) as u64 * 8)
            .sum()
    }
}

/// All public key material a workload needs: encryption key, relinearization
/// key, rotation keys and the conjugation key.
#[derive(Debug, Clone)]
pub struct KeyBundle {
    pub(crate) public: PublicKey,
    pub(crate) relin: EvaluationKey,
    pub(crate) rotations: HashMap<i64, EvaluationKey>,
    pub(crate) conjugation: Option<EvaluationKey>,
}

impl KeyBundle {
    /// The public encryption key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The relinearization (multiplication) key.
    pub fn relin(&self) -> &EvaluationKey {
        &self.relin
    }

    /// The rotation key for rotation amount `r`, if generated.
    pub fn rotation(&self, r: i64) -> Option<&EvaluationKey> {
        self.rotations.get(&r)
    }

    /// Rotation amounts for which keys are present.
    pub fn rotation_amounts(&self) -> Vec<i64> {
        let mut v: Vec<i64> = self.rotations.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The conjugation key, if generated.
    pub fn conjugation(&self) -> Option<&EvaluationKey> {
        self.conjugation.as_ref()
    }

    /// Inserts a rotation key.
    pub fn insert_rotation(&mut self, r: i64, key: EvaluationKey) {
        self.rotations.insert(r, key);
    }

    /// Sets the conjugation key.
    pub fn set_conjugation(&mut self, key: EvaluationKey) {
        self.conjugation = Some(key);
    }

    /// Aggregate size in bytes of every evaluation key in the bundle
    /// (relinearization + rotations + conjugation); the working set that must
    /// stream from off-chip memory during bootstrapping (§3.3).
    pub fn evk_working_set_bytes(&self) -> u64 {
        self.relin.size_bytes()
            + self
                .rotations
                .values()
                .map(EvaluationKey::size_bytes)
                .sum::<u64>()
            + self
                .conjugation
                .as_ref()
                .map(EvaluationKey::size_bytes)
                .unwrap_or(0)
    }
}
