//! Approximate modular reduction (EvalMod) building blocks: Chebyshev series,
//! the Clenshaw recurrence (plaintext and homomorphic), and the double-angle
//! sine evaluator of the Han–Ki-style bootstrapping [40] the paper adopts
//! (§2.4).
//!
//! Bootstrapping must evaluate `x mod q0` on encrypted data; since only
//! polynomials are homomorphically computable, the reduction is replaced by a
//! scaled sine, `(q0/2πΔ)·sin(2πx/q0)`, valid because the ModRaise overflow is
//! an integer multiple of `q0`. Evaluating the sine directly over the full
//! overflow range `[-K, K]` needs a high-degree polynomial; the double-angle
//! method instead approximates `cos(2πt)` on the `2^r`-times smaller range,
//! then applies `cos(2θ) = 2cos²θ − 1` `r` times — trading polynomial degree
//! for a handful of squarings, which is how production bootstrapping keeps
//! `L_boot` near 19 levels.

use crate::ciphertext::Ciphertext;
use crate::error::CkksError;
use crate::evaluator::Evaluator;

/// A Chebyshev series `Σ c_j T_j(x/k)` on the interval `[-k, k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChebyshevSeries {
    coefficients: Vec<f64>,
    half_width: f64,
}

impl ChebyshevSeries {
    /// Interpolates `f` on `[-half_width, half_width]` with a series of the
    /// given degree (degree + 1 coefficients), using Chebyshev nodes.
    ///
    /// # Panics
    ///
    /// Panics if `half_width` is not positive.
    pub fn fit(f: impl Fn(f64) -> f64, half_width: f64, degree: usize) -> Self {
        assert!(half_width > 0.0, "interval half-width must be positive");
        let m = degree + 1;
        let nodes: Vec<f64> = (0..m)
            .map(|i| (std::f64::consts::PI * (i as f64 + 0.5) / m as f64).cos())
            .collect();
        let values: Vec<f64> = nodes.iter().map(|&t| f(half_width * t)).collect();
        let mut coefficients = vec![0.0; m];
        for (j, c) in coefficients.iter_mut().enumerate() {
            let mut s = 0.0;
            for (i, &v) in values.iter().enumerate() {
                s += v * (std::f64::consts::PI * j as f64 * (i as f64 + 0.5) / m as f64).cos();
            }
            *c = 2.0 * s / m as f64;
        }
        coefficients[0] /= 2.0;
        Self {
            coefficients,
            half_width,
        }
    }

    /// The series degree.
    pub fn degree(&self) -> usize {
        self.coefficients.len() - 1
    }

    /// The interval half-width `k`.
    pub fn half_width(&self) -> f64 {
        self.half_width
    }

    /// The Chebyshev coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Evaluates the series at a plaintext point via Clenshaw's recurrence.
    pub fn eval(&self, t: f64) -> f64 {
        let x = t / self.half_width;
        let mut b1 = 0.0f64;
        let mut b2 = 0.0f64;
        for j in (1..self.coefficients.len()).rev() {
            let b = self.coefficients[j] + 2.0 * x * b1 - b2;
            b2 = b1;
            b1 = b;
        }
        self.coefficients[0] + x * b1 - b2
    }

    /// Maximum absolute error of the series against `f` sampled on a uniform
    /// grid (a practical proxy for the sup-norm error).
    pub fn max_error(&self, f: impl Fn(f64) -> f64, samples: usize) -> f64 {
        (0..=samples)
            .map(|i| {
                let t = -self.half_width + 2.0 * self.half_width * i as f64 / samples as f64;
                (self.eval(t) - f(t)).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Evaluates the series homomorphically via the Clenshaw recurrence,
    /// consuming roughly `degree + 1` levels.
    ///
    /// # Errors
    ///
    /// Fails on level exhaustion or missing keys.
    pub fn eval_homomorphic(
        &self,
        eval: &Evaluator<'_>,
        ct: &Ciphertext,
    ) -> crate::Result<Ciphertext> {
        if self.coefficients.len() < 2 {
            return Err(CkksError::InvalidParameters(
                "Chebyshev series must have degree at least 1".to_string(),
            ));
        }
        // Normalise the argument to [-1, 1].
        let x = eval.rescale(&eval.mul_const(ct, 1.0 / self.half_width)?)?;
        let degree = self.coefficients.len() - 1;
        let mut b_next: Option<Ciphertext> = None;
        let mut b_next2: Option<Ciphertext> = None;
        for k in (1..=degree).rev() {
            let mut term = match &b_next {
                Some(b1) => {
                    let x_aligned = eval.level_reduce(&x, b1.level())?;
                    let two_x_b1 = eval.rescale(&eval.mul(&eval.add(b1, b1)?, &x_aligned)?)?;
                    eval.add_const(&two_x_b1, self.coefficients[k])?
                }
                None => {
                    let base = eval.rescale(&eval.mul_const(&x, 0.0)?)?;
                    eval.add_const(&base, self.coefficients[k])?
                }
            };
            if let Some(b2) = &b_next2 {
                let b2_aligned = eval.level_reduce(b2, term.level())?;
                term = eval.sub(&term, &b2_aligned)?;
            }
            b_next2 = b_next;
            b_next = Some(term);
        }
        let b1 = b_next.expect("degree >= 1");
        let x_aligned = eval.level_reduce(&x, b1.level())?;
        let mut result = eval.rescale(&eval.mul(&b1, &x_aligned)?)?;
        result = eval.add_const(&result, self.coefficients[0])?;
        if let Some(b2) = &b_next2 {
            let b2_aligned = eval.level_reduce(b2, result.level())?;
            result = eval.sub(&result, &b2_aligned)?;
        }
        Ok(result)
    }
}

/// Double-angle evaluator of the scaled sine used by EvalMod.
///
/// The evaluator approximates `cos(2π(t - 1/4)/2^r)` with a low-degree
/// Chebyshev series on the reduced interval, squares it `r` times via the
/// double-angle identity to recover `cos(2π(t - 1/4)) = sin(2πt)`, and scales
/// by `amplitude` (set to `q0/(2πΔ)` by the bootstrapping driver).
#[derive(Debug, Clone, PartialEq)]
pub struct SineEvaluator {
    series: ChebyshevSeries,
    double_angles: u32,
    amplitude: f64,
    range: f64,
}

impl SineEvaluator {
    /// Builds a sine evaluator for arguments in `[-range, range]` with the
    /// given Chebyshev degree on the reduced interval and `double_angles`
    /// double-angle iterations. `amplitude` scales the final result.
    ///
    /// # Panics
    ///
    /// Panics if `range` is not positive.
    pub fn new(range: f64, degree: usize, double_angles: u32, amplitude: f64) -> Self {
        assert!(range > 0.0, "range must be positive");
        let scale = 2f64.powi(double_angles as i32);
        // After dividing by 2^r the argument (including the -1/4 phase shift)
        // lives in [-(range + 0.25)/2^r, (range + 0.25)/2^r].
        let reduced = (range + 0.25) / scale;
        let series = ChebyshevSeries::fit(
            move |t| (2.0 * std::f64::consts::PI * t).cos(),
            reduced,
            degree,
        );
        Self {
            series,
            double_angles,
            amplitude,
            range,
        }
    }

    /// The number of double-angle iterations `r`.
    pub fn double_angles(&self) -> u32 {
        self.double_angles
    }

    /// The Chebyshev series used on the reduced interval.
    pub fn series(&self) -> &ChebyshevSeries {
        &self.series
    }

    /// Multiplicative levels one homomorphic evaluation consumes:
    /// one for the range normalization, `degree` for the Clenshaw recurrence,
    /// and two per double-angle iteration (square + rescale of the constant).
    pub fn levels_consumed(&self) -> usize {
        1 + self.series.degree() + 2 * self.double_angles as usize
    }

    /// Plaintext reference evaluation of `amplitude · sin(2π t)`.
    pub fn eval(&self, t: f64) -> f64 {
        let scale = 2f64.powi(self.double_angles as i32);
        let mut c = self.series.eval((t - 0.25) / scale);
        for _ in 0..self.double_angles {
            c = 2.0 * c * c - 1.0;
        }
        self.amplitude * c
    }

    /// Maximum error of the plaintext evaluation against the exact scaled sine
    /// on a uniform grid over `[-range, range]`.
    pub fn max_error(&self, samples: usize) -> f64 {
        (0..=samples)
            .map(|i| {
                let t = -self.range + 2.0 * self.range * i as f64 / samples as f64;
                (self.eval(t) - self.amplitude * (2.0 * std::f64::consts::PI * t).sin()).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Homomorphic evaluation of `amplitude · sin(2π·ct)`.
    ///
    /// # Errors
    ///
    /// Fails on level exhaustion or missing keys.
    pub fn eval_homomorphic(
        &self,
        eval: &Evaluator<'_>,
        ct: &Ciphertext,
    ) -> crate::Result<Ciphertext> {
        let scale = 2f64.powi(self.double_angles as i32);
        // (t - 1/4) / 2^r
        let shifted = eval.add_const(ct, -0.25)?;
        let reduced = eval.rescale(&eval.mul_const(&shifted, 1.0 / scale)?)?;
        // cos on the reduced interval.
        let mut c = self.series.eval_homomorphic(eval, &reduced)?;
        // r double-angle steps: c ← 2c² − 1.
        for _ in 0..self.double_angles {
            let sq = eval.rescale(&eval.mul(&c, &c)?)?;
            let doubled = eval.add(&sq, &sq)?;
            c = eval.add_const(&doubled, -1.0)?;
        }
        // Final amplitude scaling.
        eval.rescale(&eval.mul_const(&c, self.amplitude)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use rand::SeedableRng;

    #[test]
    fn chebyshev_fit_converges_with_degree() {
        let f = |t: f64| (2.0 * std::f64::consts::PI * t).sin();
        let coarse = ChebyshevSeries::fit(f, 4.0, 23);
        let fine = ChebyshevSeries::fit(f, 4.0, 47);
        assert!(fine.max_error(f, 400) < coarse.max_error(f, 400));
        assert!(fine.max_error(f, 400) < 1e-6);
    }

    #[test]
    fn double_angle_matches_direct_sine() {
        // Degree-15 Chebyshev on the reduced interval + 3 double angles covers
        // [-6, 6] with small error — far cheaper than a direct degree-~60 fit.
        let sine = SineEvaluator::new(6.0, 15, 3, 1.0);
        assert!(
            sine.max_error(600) < 1e-4,
            "error = {}",
            sine.max_error(600)
        );
        // The direct fit at the same total multiplicative depth is worse.
        let direct = ChebyshevSeries::fit(
            |t| (2.0 * std::f64::consts::PI * t).sin(),
            6.0,
            sine.levels_consumed() - 1,
        );
        assert!(
            sine.max_error(600) < direct.max_error(|t| (2.0 * std::f64::consts::PI * t).sin(), 600)
        );
    }

    #[test]
    fn amplitude_scales_the_output() {
        let sine = SineEvaluator::new(4.0, 15, 2, 7.5);
        let t = 1.3;
        assert!((sine.eval(t) - 7.5 * (2.0 * std::f64::consts::PI * t).sin()).abs() < 1e-3);
    }

    #[test]
    fn homomorphic_chebyshev_matches_plain_eval() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let ctx = CkksContext::new_toy(1 << 8, 12, 1).unwrap();
        let (sk, keys) = ctx.generate_keys(&mut rng).unwrap();
        let eval = ctx.evaluator(&keys);
        // A gentle degree-7 polynomial target on [-2, 2].
        let f = |t: f64| 0.3 * t + 0.1 * t * t - 0.05 * t * t * t;
        let series = ChebyshevSeries::fit(f, 2.0, 7);
        let msg: Vec<crate::Complex> = (0..ctx.slots())
            .map(|i| crate::Complex::new(-1.8 + 3.6 * (i as f64) / ctx.slots() as f64, 0.0))
            .collect();
        let ct = ctx
            .encrypt(&ctx.encode(&msg).unwrap(), &sk, &mut rng)
            .unwrap();
        let out_ct = series.eval_homomorphic(&eval, &ct).unwrap();
        let out = ctx.decode(&ctx.decrypt(&out_ct, &sk).unwrap()).unwrap();
        for (i, o) in out.iter().enumerate().step_by(16) {
            let expect = series.eval(msg[i].re);
            assert!(
                (o.re - expect).abs() < 5e-2,
                "slot {i}: {} vs {expect}",
                o.re
            );
        }
    }

    #[test]
    fn homomorphic_double_angle_sine_on_a_toy_ring() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        // Enough levels for degree 7 + 2 double angles + scaling.
        let ctx = CkksContext::new_toy(1 << 8, 16, 1).unwrap();
        let (sk, keys) = ctx.generate_keys(&mut rng).unwrap();
        let eval = ctx.evaluator(&keys);
        let sine = SineEvaluator::new(1.5, 7, 2, 1.0);
        assert!(sine.levels_consumed() <= ctx.max_level());
        let msg: Vec<crate::Complex> = (0..ctx.slots())
            .map(|i| crate::Complex::new(-1.2 + 2.4 * (i as f64) / ctx.slots() as f64, 0.0))
            .collect();
        let ct = ctx
            .encrypt(&ctx.encode(&msg).unwrap(), &sk, &mut rng)
            .unwrap();
        let out_ct = sine.eval_homomorphic(&eval, &ct).unwrap();
        let out = ctx.decode(&ctx.decrypt(&out_ct, &sk).unwrap()).unwrap();
        for (i, o) in out.iter().enumerate().step_by(16) {
            let expect = sine.eval(msg[i].re);
            assert!(
                (o.re - expect).abs() < 8e-2,
                "slot {i}: {} vs {expect}",
                o.re
            );
        }
    }

    #[test]
    fn level_accounting_is_consistent() {
        let sine = SineEvaluator::new(12.0, 23, 4, 3.0);
        assert_eq!(sine.levels_consumed(), 1 + 23 + 8);
        assert_eq!(sine.double_angles(), 4);
        assert_eq!(sine.series().degree(), 23);
    }
}
