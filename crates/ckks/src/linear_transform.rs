//! Baby-step/giant-step (BSGS) evaluation of homomorphic linear transforms.
//!
//! CoeffToSlot and SlotToCoeff — the linear-transformation stages that
//! dominate bootstrapping's `HRot` count (§3.3) — are slot-space
//! matrix–vector products. Evaluating an `n × n` matrix through its
//! generalized diagonals costs one rotation per non-zero diagonal; the BSGS
//! decomposition regroups the diagonals as
//!
//! ```text
//! M·v = Σ_g rot_{g·b}( Σ_j  σ_{-g·b}(diag_{g·b+j}) ⊙ rot_j(v) )
//! ```
//!
//! so only `b` baby-step rotations of the input and `⌈d/b⌉` giant-step
//! rotations of the partial sums are needed — `O(√d)` rotations instead of
//! `O(d)`, which is exactly the optimization the bootstrapping algorithms the
//! paper builds on [12, 40] use.

use std::collections::BTreeMap;

use crate::ciphertext::Ciphertext;
use crate::encoding::Complex;
use crate::error::CkksError;
use crate::evaluator::Evaluator;

/// A slot-space linear transform prepared for BSGS evaluation.
#[derive(Debug, Clone)]
pub struct BsgsTransform {
    /// Number of slots the transform operates on.
    slots: usize,
    /// Baby-step count `b`.
    baby_steps: usize,
    /// Non-zero generalized diagonals, keyed by diagonal index in `[0, slots)`.
    diagonals: BTreeMap<usize, Vec<Complex>>,
}

impl BsgsTransform {
    /// Builds a BSGS plan from a dense `slots × slots` matrix, extracting its
    /// non-zero generalized diagonals and choosing `b ≈ √d`.
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::InvalidParameters`] if the matrix is empty or not
    /// square.
    pub fn from_matrix(matrix: &[Vec<Complex>]) -> crate::Result<Self> {
        let slots = matrix.len();
        if slots == 0 || matrix.iter().any(|row| row.len() != slots) {
            return Err(CkksError::InvalidParameters(
                "linear transform matrix must be square and non-empty".to_string(),
            ));
        }
        let mut diagonals = BTreeMap::new();
        for r in 0..slots {
            let diag: Vec<Complex> = (0..slots).map(|i| matrix[i][(i + r) % slots]).collect();
            if diag.iter().any(|c| c.abs() > 1e-12) {
                diagonals.insert(r, diag);
            }
        }
        if diagonals.is_empty() {
            return Err(CkksError::InvalidParameters(
                "linear transform has no non-zero diagonals".to_string(),
            ));
        }
        let baby_steps = Self::default_baby_steps(diagonals.len(), slots);
        Ok(Self {
            slots,
            baby_steps,
            diagonals,
        })
    }

    /// Builds a plan directly from non-zero diagonals (indices in `[0, slots)`).
    ///
    /// # Errors
    ///
    /// Returns [`CkksError::InvalidParameters`] if no diagonals are provided or
    /// their lengths disagree.
    pub fn from_diagonals(
        slots: usize,
        diagonals: BTreeMap<usize, Vec<Complex>>,
    ) -> crate::Result<Self> {
        if diagonals.is_empty() {
            return Err(CkksError::InvalidParameters(
                "linear transform has no non-zero diagonals".to_string(),
            ));
        }
        if diagonals.values().any(|d| d.len() != slots) {
            return Err(CkksError::InvalidParameters(
                "diagonal length must equal the slot count".to_string(),
            ));
        }
        let baby_steps = Self::default_baby_steps(diagonals.len(), slots);
        Ok(Self {
            slots,
            baby_steps,
            diagonals,
        })
    }

    fn default_baby_steps(diagonal_count: usize, slots: usize) -> usize {
        let b = (diagonal_count as f64).sqrt().ceil() as usize;
        b.clamp(1, slots)
    }

    /// Overrides the baby-step count (must be in `[1, slots]`).
    pub fn with_baby_steps(mut self, baby_steps: usize) -> Self {
        self.baby_steps = baby_steps.clamp(1, self.slots);
        self
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of non-zero generalized diagonals.
    pub fn diagonal_count(&self) -> usize {
        self.diagonals.len()
    }

    /// The baby-step count `b`.
    pub fn baby_steps(&self) -> usize {
        self.baby_steps
    }

    /// Rotation amounts required by the BSGS evaluation: the baby steps
    /// `1..b` that actually appear in some diagonal index, plus the giant
    /// steps `g·b` for the populated giant-step groups.
    pub fn required_rotations(&self) -> Vec<i64> {
        let b = self.baby_steps;
        let mut rotations = std::collections::BTreeSet::new();
        for &idx in self.diagonals.keys() {
            let baby = idx % b;
            let giant = idx - baby;
            if baby != 0 {
                rotations.insert(baby as i64);
            }
            if giant != 0 {
                rotations.insert(giant as i64);
            }
        }
        rotations.into_iter().collect()
    }

    /// Number of key-switching operations (rotations) one evaluation performs;
    /// the quantity the `O(√d)` decomposition minimizes.
    pub fn rotation_count(&self) -> usize {
        let b = self.baby_steps;
        let babies: std::collections::BTreeSet<usize> = self
            .diagonals
            .keys()
            .map(|&idx| idx % b)
            .filter(|&r| r != 0)
            .collect();
        let giants: std::collections::BTreeSet<usize> = self
            .diagonals
            .keys()
            .map(|&idx| idx - idx % b)
            .filter(|&g| g != 0)
            .collect();
        babies.len() + giants.len()
    }

    /// Applies the transform to a plaintext slot vector (reference
    /// implementation used in tests and to validate the homomorphic path).
    pub fn apply_plain(&self, input: &[Complex]) -> Vec<Complex> {
        let n = self.slots;
        let mut out = vec![Complex::default(); n];
        for (&r, diag) in &self.diagonals {
            for i in 0..n {
                out[i] = out[i] + diag[i] * input[(i + r) % n];
            }
        }
        out
    }

    /// Evaluates the transform homomorphically with the BSGS strategy,
    /// consuming one multiplicative level.
    ///
    /// # Errors
    ///
    /// Fails if a required rotation key is missing or on level exhaustion.
    pub fn evaluate(&self, eval: &Evaluator<'_>, ct: &Ciphertext) -> crate::Result<Ciphertext> {
        let context = eval.context();
        let b = self.baby_steps;

        // Baby-step rotations of the input, computed once and shared by every
        // giant-step group (this sharing is where the rotation savings come
        // from; BTS additionally hoists the ModUp of these rotations, which
        // the op-count model in `bts-ckks::complexity` accounts for).
        let mut baby_rotations: BTreeMap<usize, Ciphertext> = BTreeMap::new();
        for &idx in self.diagonals.keys() {
            let baby = idx % b;
            if let std::collections::btree_map::Entry::Vacant(e) = baby_rotations.entry(baby) {
                let rotated = if baby == 0 {
                    ct.clone()
                } else {
                    eval.rotate(ct, baby as i64)?
                };
                e.insert(rotated);
            }
        }

        // Group diagonals by giant step g·b and accumulate
        // Σ_j σ_{-g·b}(diag) ⊙ rot_j(ct) inside each group.
        let mut result: Option<Ciphertext> = None;
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &idx in self.diagonals.keys() {
            groups.entry(idx - idx % b).or_default().push(idx);
        }
        for (&giant, indices) in &groups {
            let mut inner: Option<Ciphertext> = None;
            for &idx in indices {
                let baby = idx % b;
                let diag = &self.diagonals[&idx];
                // Pre-rotate the diagonal by -giant so the outer rotation of
                // the whole group lands its entries in the right slots.
                let shifted: Vec<Complex> = (0..self.slots)
                    .map(|i| diag[(i + self.slots - giant % self.slots) % self.slots])
                    .collect();
                let rotated_ct = &baby_rotations[&baby];
                let pt = context.encode_at(&shifted, rotated_ct.level(), context.scale())?;
                let term = eval.mul_plain(rotated_ct, &pt)?;
                inner = Some(match inner {
                    None => term,
                    Some(acc) => eval.add(&acc, &term)?,
                });
            }
            let inner = inner.expect("group has at least one diagonal");
            let lifted = if giant == 0 {
                inner
            } else {
                eval.rotate(&inner, giant as i64)?
            };
            result = Some(match result {
                None => lifted,
                Some(acc) => eval.add(&acc, &lifted)?,
            });
        }
        eval.rescale(&result.expect("transform has at least one diagonal"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use rand::SeedableRng;

    fn rotation_matrix(slots: usize, by: usize) -> Vec<Vec<Complex>> {
        // out_i = in_{i+by}: a pure generalized diagonal at index `by`.
        let mut m = vec![vec![Complex::default(); slots]; slots];
        for i in 0..slots {
            m[i][(i + by) % slots] = Complex::new(1.0, 0.0);
        }
        m
    }

    fn random_sparse_matrix(slots: usize, diagonals: usize) -> Vec<Vec<Complex>> {
        let mut m = vec![vec![Complex::default(); slots]; slots];
        for d in 0..diagonals {
            let r = (d * 7 + 1) % slots;
            for i in 0..slots {
                m[i][(i + r) % slots] =
                    Complex::new(0.05 + 0.01 * (d as f64), 0.02 * ((i % 5) as f64));
            }
        }
        m
    }

    #[test]
    fn bsgs_uses_fewer_rotations_than_the_naive_diagonal_method() {
        let slots = 64;
        let m = random_sparse_matrix(slots, 32);
        let t = BsgsTransform::from_matrix(&m).unwrap();
        assert!(t.diagonal_count() >= 30);
        // Naive: one rotation per non-zero diagonal; BSGS: O(√n) baby steps
        // plus O(√n) giant steps for diagonals scattered over the whole range.
        assert!(t.rotation_count() < t.diagonal_count());
        assert!(t.rotation_count() <= 2 * (slots as f64).sqrt().ceil() as usize + 4);
    }

    #[test]
    fn plain_application_matches_direct_matrix_product() {
        let slots = 32;
        let m = random_sparse_matrix(slots, 11);
        let t = BsgsTransform::from_matrix(&m).unwrap();
        let input: Vec<Complex> = (0..slots)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), (i as f64 * 0.17).cos()))
            .collect();
        let via_diagonals = t.apply_plain(&input);
        for i in 0..slots {
            let mut direct = Complex::default();
            for j in 0..slots {
                direct = direct + m[i][j] * input[j];
            }
            assert!((direct - via_diagonals[i]).abs() < 1e-9, "slot {i}");
        }
    }

    #[test]
    fn homomorphic_evaluation_matches_plain_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        let ctx = CkksContext::new_toy(1 << 8, 6, 1).unwrap();
        let slots = ctx.slots();
        let m = random_sparse_matrix(slots, 9);
        let t = BsgsTransform::from_matrix(&m).unwrap();

        let (sk, mut keys) = ctx.generate_keys(&mut rng).unwrap();
        ctx.add_rotation_keys(&sk, &mut keys, &t.required_rotations(), &mut rng)
            .unwrap();
        let eval = ctx.evaluator(&keys);

        let msg: Vec<Complex> = (0..slots)
            .map(|i| Complex::new(0.4 * (i as f64 * 0.21).cos(), 0.1))
            .collect();
        let ct = ctx
            .encrypt(&ctx.encode(&msg).unwrap(), &sk, &mut rng)
            .unwrap();
        let out_ct = t.evaluate(&eval, &ct).unwrap();
        assert_eq!(out_ct.level(), ctx.max_level() - 1);
        let out = ctx.decode(&ctx.decrypt(&out_ct, &sk).unwrap()).unwrap();
        let expect = t.apply_plain(&msg);
        for i in 0..slots {
            assert!(
                (out[i] - expect[i]).abs() < 2e-2,
                "slot {i}: {:?} vs {:?}",
                out[i],
                expect[i]
            );
        }
    }

    #[test]
    fn single_diagonal_transform_is_a_rotation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let ctx = CkksContext::new_toy(1 << 8, 4, 1).unwrap();
        let slots = ctx.slots();
        let t = BsgsTransform::from_matrix(&rotation_matrix(slots, 3)).unwrap();
        assert_eq!(t.diagonal_count(), 1);
        let (sk, mut keys) = ctx.generate_keys(&mut rng).unwrap();
        ctx.add_rotation_keys(&sk, &mut keys, &t.required_rotations(), &mut rng)
            .unwrap();
        let eval = ctx.evaluator(&keys);
        let msg: Vec<Complex> = (0..slots)
            .map(|i| Complex::new(i as f64 * 0.01, 0.0))
            .collect();
        let ct = ctx
            .encrypt(&ctx.encode(&msg).unwrap(), &sk, &mut rng)
            .unwrap();
        let out = ctx
            .decode(&ctx.decrypt(&t.evaluate(&eval, &ct).unwrap(), &sk).unwrap())
            .unwrap();
        for i in 0..slots {
            assert!((out[i] - msg[(i + 3) % slots]).abs() < 1e-2, "slot {i}");
        }
    }

    #[test]
    fn rejects_degenerate_matrices() {
        assert!(BsgsTransform::from_matrix(&[]).is_err());
        let ragged = vec![vec![Complex::default(); 3], vec![Complex::default(); 2]];
        assert!(BsgsTransform::from_matrix(&ragged).is_err());
        let zero = vec![vec![Complex::default(); 4]; 4];
        assert!(BsgsTransform::from_matrix(&zero).is_err());
        assert!(BsgsTransform::from_diagonals(4, BTreeMap::new()).is_err());
    }

    #[test]
    fn baby_step_override_changes_the_schedule_not_the_result() {
        let slots = 16;
        let m = random_sparse_matrix(slots, 7);
        let base = BsgsTransform::from_matrix(&m).unwrap();
        let custom = BsgsTransform::from_matrix(&m).unwrap().with_baby_steps(2);
        let input: Vec<Complex> = (0..slots).map(|i| Complex::new(i as f64, 0.5)).collect();
        let a = base.apply_plain(&input);
        let b = custom.apply_plain(&input);
        for i in 0..slots {
            assert!((a[i] - b[i]).abs() < 1e-12);
        }
        assert_ne!(base.baby_steps(), custom.baby_steps());
    }
}
