use std::fmt;

use bts_math::MathError;

/// Error type for the CKKS layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CkksError {
    /// An error bubbled up from the number-theoretic substrate.
    Math(MathError),
    /// The requested parameters are invalid (reason in the message).
    InvalidParameters(String),
    /// A message is too long for the available slots.
    TooManySlots {
        /// Slots requested.
        requested: usize,
        /// Slots available (N/2).
        available: usize,
    },
    /// The ciphertext has no levels left for the requested operation.
    LevelExhausted {
        /// Current level.
        level: usize,
        /// Levels the operation needs.
        required: usize,
    },
    /// Two ciphertexts are at incompatible levels or scales.
    OperandMismatch(String),
    /// A required key (e.g. a rotation key) is missing from the bundle.
    MissingKey(String),
    /// Decryption noise overwhelmed the message.
    NoiseOverflow,
}

impl fmt::Display for CkksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkksError::Math(e) => write!(f, "math error: {e}"),
            CkksError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            CkksError::TooManySlots {
                requested,
                available,
            } => write!(f, "message needs {requested} slots but only {available} are available"),
            CkksError::LevelExhausted { level, required } => write!(
                f,
                "ciphertext at level {level} cannot support an operation consuming {required} level(s)"
            ),
            CkksError::OperandMismatch(msg) => write!(f, "operand mismatch: {msg}"),
            CkksError::MissingKey(which) => write!(f, "missing key: {which}"),
            CkksError::NoiseOverflow => write!(f, "decryption noise overwhelmed the message"),
        }
    }
}

impl std::error::Error for CkksError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkksError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for CkksError {
    fn from(e: MathError) -> Self {
        CkksError::Math(e)
    }
}
