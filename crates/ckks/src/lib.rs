//! # bts-ckks
//!
//! A from-scratch Full-RNS CKKS implementation: the homomorphic-encryption
//! workload substrate that the BTS accelerator executes. It provides
//!
//! * canonical-embedding encoding/decoding of complex vectors,
//! * key generation (secret, public, relinearization and rotation keys) with
//!   the generalized `dnum` key-switching of Han–Ki that the paper adopts,
//! * the primitive HE ops of §2.3: `HAdd`, `HMult`, `HRot`, `HRescale`,
//!   `CAdd`/`CMult`, `PAdd`/`PMult`,
//! * bootstrapping building blocks (mod-raise, homomorphic linear transforms,
//!   polynomial evaluation, approximate modular reduction) and a bootstrapping
//!   driver,
//! * an analytical operation-count model of key-switching used to reproduce
//!   Fig. 3(b).
//!
//! The implementation favours clarity and correctness over raw speed: it is
//! the functional reference that the accelerator simulator's op traces are
//! validated against, exercised at small ring degrees in tests.
//!
//! ```
//! use bts_ckks::{CkksContext, Complex};
//!
//! # fn main() -> Result<(), bts_ckks::CkksError> {
//! let ctx = CkksContext::new_toy(1 << 12, 6, 2)?;
//! let (sk, keys) = ctx.generate_keys(&mut rand::thread_rng())?;
//! let eval = ctx.evaluator(&keys);
//! let msg: Vec<Complex> = (0..ctx.slots()).map(|i| Complex::new(i as f64 * 0.01, 0.0)).collect();
//! let pt = ctx.encode(&msg)?;
//! let ct = ctx.encrypt(&pt, &sk, &mut rand::thread_rng())?;
//! let ct2 = eval.mul(&ct, &ct)?;
//! let out = ctx.decode(&ctx.decrypt(&eval.rescale(&ct2)?, &sk)?)?;
//! assert!((out[10].re - 0.01).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bootstrap;
mod ciphertext;
mod complexity;
mod context;
mod encoding;
mod error;
mod eval_mod;
mod evaluator;
mod keys;
mod linear_transform;
mod noise;

pub use bootstrap::{BootstrapConfig, Bootstrapper};
pub use ciphertext::{Ciphertext, Plaintext};
pub use complexity::{hmult_complexity, ComplexityBreakdown};
pub use context::CkksContext;
pub use encoding::{CkksEncoder, Complex};
pub use error::CkksError;
pub use eval_mod::{ChebyshevSeries, SineEvaluator};
pub use evaluator::{Evaluator, LinearTransform};
pub use keys::{EvaluationKey, KeyBundle, PublicKey, SecretKey};
pub use linear_transform::BsgsTransform;
pub use noise::NoiseTracker;

/// Result alias for CKKS operations.
pub type Result<T> = std::result::Result<T, CkksError>;
