use bts_math::RnsPoly;

/// An encoded (but not encrypted) CKKS message: a scaled integer polynomial on
/// the ciphertext-modulus basis at some level.
#[derive(Debug, Clone, PartialEq)]
pub struct Plaintext {
    pub(crate) poly: RnsPoly,
    pub(crate) level: usize,
    pub(crate) scale: f64,
}

impl Plaintext {
    /// Creates a plaintext from its parts.
    pub fn new(poly: RnsPoly, level: usize, scale: f64) -> Self {
        Self { poly, level, scale }
    }

    /// The underlying polynomial.
    pub fn poly(&self) -> &RnsPoly {
        &self.poly
    }

    /// Current multiplicative level ℓ.
    pub fn level(&self) -> usize {
        self.level
    }

    /// CKKS scaling factor Δ attached to this plaintext.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// A CKKS ciphertext: a pair of polynomials `(c0, c1)` on the level-ℓ
/// ciphertext-modulus basis such that `c0 + c1·s ≈ Δ·m` (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    pub(crate) c0: RnsPoly,
    pub(crate) c1: RnsPoly,
    pub(crate) level: usize,
    pub(crate) scale: f64,
}

impl Ciphertext {
    /// Creates a ciphertext from its parts.
    pub fn new(c0: RnsPoly, c1: RnsPoly, level: usize, scale: f64) -> Self {
        Self {
            c0,
            c1,
            level,
            scale,
        }
    }

    /// The `c0` (a.k.a. `b`) polynomial.
    pub fn c0(&self) -> &RnsPoly {
        &self.c0
    }

    /// The `c1` (a.k.a. `a`) polynomial.
    pub fn c1(&self) -> &RnsPoly {
        &self.c1
    }

    /// Current multiplicative level ℓ (number of rescalings still possible).
    pub fn level(&self) -> usize {
        self.level
    }

    /// CKKS scaling factor currently attached to the ciphertext.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Ring degree N.
    pub fn degree(&self) -> usize {
        self.c0.degree()
    }

    /// Size of the ciphertext in bytes (two N×(ℓ+1) residue matrices of
    /// 64-bit words), matching the paper's accounting.
    pub fn size_bytes(&self) -> u64 {
        2 * (self.level as u64 + 1) * self.c0.degree() as u64 * 8
    }
}
