//! Analytical noise-budget tracking for RNS-CKKS circuits.
//!
//! CKKS is an approximate scheme: every operation adds (or amplifies) error,
//! and the paper's parameter discussion (§2.4, §3.2) revolves around keeping
//! enough modulus above the scale to absorb that error — the prime sizes of
//! 2^40–2^60, the `L_boot` levels consumed by bootstrapping, and the choice of
//! `dnum` all follow from it. This module provides a lightweight estimator in
//! the style of the standard CKKS noise heuristics: it tracks, in bits, the
//! log of the ciphertext modulus remaining, the scale, and a bound on the
//! error, and exposes the *precision budget* (message bits above the noise
//! floor) after a sequence of operations.

use bts_params::CkksInstance;

/// Noise and scale bookkeeping for one ciphertext as operations are applied.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseTracker {
    /// log2 of the remaining ciphertext modulus.
    log_q: f64,
    /// log2 of the current scale Δ'.
    log_scale: f64,
    /// log2 of the current error bound.
    log_error: f64,
    /// log2 of the scaling-prime size (what one rescale divides by).
    log_prime: f64,
    /// Ring degree (error growth of multiplications scales with √N).
    degree: usize,
    /// Remaining multiplicative level.
    level: usize,
}

/// Default log2 error of a fresh encryption (encryption noise ≈ σ·√N with
/// σ = 3.2; expressed conservatively in bits for typical toy-to-paper rings).
fn fresh_error_bits(degree: usize) -> f64 {
    (3.2 * (degree as f64).sqrt() * 6.0).log2()
}

impl NoiseTracker {
    /// Tracker for a freshly encrypted ciphertext at the top level of an
    /// instance.
    pub fn fresh(instance: &CkksInstance) -> Self {
        Self {
            log_q: instance.log_q(),
            log_scale: instance.log_scale() as f64,
            log_error: fresh_error_bits(instance.n()),
            log_prime: instance.log_scale() as f64,
            degree: instance.n(),
            level: instance.max_level(),
        }
    }

    /// Tracker for a ciphertext at an arbitrary level of an instance.
    pub fn at_level(instance: &CkksInstance, level: usize) -> Self {
        let log_q = instance.log_q0() as f64 + level as f64 * instance.log_scale() as f64;
        Self {
            log_q,
            log_scale: instance.log_scale() as f64,
            log_error: fresh_error_bits(instance.n()),
            log_prime: instance.log_scale() as f64,
            degree: instance.n(),
            level,
        }
    }

    /// Remaining multiplicative level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// log2 of the remaining ciphertext modulus.
    pub fn log_q(&self) -> f64 {
        self.log_q
    }

    /// log2 of the current scale.
    pub fn log_scale(&self) -> f64 {
        self.log_scale
    }

    /// log2 of the current error bound.
    pub fn log_error(&self) -> f64 {
        self.log_error
    }

    /// Precision budget in bits: how many bits of the message (at unit
    /// magnitude) sit above the error floor. Negative means the message has
    /// been swallowed by noise.
    pub fn precision_bits(&self) -> f64 {
        self.log_scale - self.log_error
    }

    /// Whether another rescaling multiplication is possible at all.
    pub fn can_multiply(&self) -> bool {
        self.level > 0 && self.log_q > self.log_scale + self.log_prime
    }

    /// Applies a ciphertext–ciphertext addition (errors add; one extra bit in
    /// the worst case).
    pub fn add(&mut self, other: &NoiseTracker) {
        self.log_error = self.log_error.max(other.log_error) + 1.0;
    }

    /// Applies a ciphertext–plaintext multiplication by a message of magnitude
    /// ≤ 1 encoded at the tracker's scale: scale doubles, error is scaled by
    /// the plaintext plus an encoding-rounding term.
    pub fn mul_plain(&mut self) {
        self.log_error += self.log_scale;
        self.log_scale *= 2.0;
        // Rounding of the encoded plaintext contributes ≈ √N/2 per slot.
        self.log_error = self
            .log_error
            .max((self.degree as f64).sqrt().log2() + self.log_scale - self.log_prime);
    }

    /// Applies a ciphertext–ciphertext multiplication followed by
    /// key-switching: scales multiply, errors cross-multiply with the
    /// messages, and key-switching adds its own additive term that the special
    /// modulus `P` suppresses (§2.5).
    pub fn multiply(&mut self, other: &NoiseTracker, instance: &CkksInstance) {
        // e_mult ≈ m1·e2 + m2·e1 (messages at their scales) + e1·e2.
        let cross = (self.log_scale + other.log_error).max(other.log_scale + self.log_error);
        self.log_error = cross.max(self.log_error + other.log_error) + 1.0;
        self.log_scale += other.log_scale;
        // Key-switching noise: roughly √(N·dnum)·q_max / P, brought under the
        // scale by the special-modulus choice; add it as an absolute floor.
        let ks = (instance.n() as f64 * instance.dnum() as f64).sqrt().log2()
            + instance.log_special() as f64
            - instance.log_p()
            + self.log_q;
        self.log_error = self.log_error.max(ks);
    }

    /// Applies a rescale: divides scale and modulus by one prime and adds the
    /// rounding error (≈ √N).
    ///
    /// # Panics
    ///
    /// Panics if no level remains.
    pub fn rescale(&mut self) {
        assert!(self.level > 0, "rescale at level 0");
        self.level -= 1;
        self.log_q -= self.log_prime;
        self.log_scale -= self.log_prime;
        let rounding = (self.degree as f64).sqrt().log2();
        self.log_error = (self.log_error - self.log_prime).max(rounding);
    }

    /// Applies a rotation / conjugation (key-switching noise only).
    pub fn rotate(&mut self, instance: &CkksInstance) {
        let ks = (instance.n() as f64 * instance.dnum() as f64).sqrt().log2()
            + instance.log_special() as f64
            - instance.log_p()
            + self.log_q;
        self.log_error = self.log_error.max(ks) + 0.5;
    }

    /// Convenience: the precision remaining after `depth` multiply-rescale
    /// rounds on fresh ciphertexts of the given instance.
    pub fn precision_after_depth(instance: &CkksInstance, depth: usize) -> f64 {
        let mut a = Self::fresh(instance);
        for _ in 0..depth.min(instance.max_level()) {
            let b = a.clone();
            a.multiply(&b, instance);
            a.rescale();
        }
        a.precision_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bts_params::InstanceBuilder;

    fn ins() -> CkksInstance {
        CkksInstance::ins1()
    }

    #[test]
    fn fresh_ciphertexts_have_large_precision() {
        let t = NoiseTracker::fresh(&ins());
        // ~51-bit scale against ~15-bit fresh noise.
        assert!(
            t.precision_bits() > 30.0,
            "precision = {}",
            t.precision_bits()
        );
        assert!(t.can_multiply());
    }

    #[test]
    fn precision_degrades_gracefully_with_depth() {
        let p0 = NoiseTracker::precision_after_depth(&ins(), 0);
        let p4 = NoiseTracker::precision_after_depth(&ins(), 4);
        let p8 = NoiseTracker::precision_after_depth(&ins(), 8);
        assert!(p0 >= p4 && p4 >= p8);
        // With the paper's 51-bit scaling primes, deep circuits retain
        // usable precision (that is the whole point of the parameter choice).
        assert!(p8 > 10.0, "precision after depth 8 = {p8}");
    }

    #[test]
    fn levels_and_modulus_shrink_with_rescale() {
        let instance = ins();
        let mut t = NoiseTracker::fresh(&instance);
        let before_q = t.log_q();
        let b = t.clone();
        t.multiply(&b, &instance);
        t.rescale();
        assert_eq!(t.level(), instance.max_level() - 1);
        assert!(t.log_q() < before_q);
        assert!((t.log_scale() - instance.log_scale() as f64).abs() < 1.5);
    }

    #[test]
    fn exhausted_ciphertexts_cannot_multiply() {
        let instance = ins();
        let mut t = NoiseTracker::at_level(&instance, 1);
        assert!(t.can_multiply());
        let b = t.clone();
        t.multiply(&b, &instance);
        t.rescale();
        assert_eq!(t.level(), 0);
        assert!(!t.can_multiply());
    }

    #[test]
    #[should_panic(expected = "rescale at level 0")]
    fn rescaling_past_level_zero_panics() {
        let mut t = NoiseTracker::at_level(&ins(), 0);
        t.rescale();
    }

    #[test]
    fn small_scaling_primes_lose_precision_faster() {
        // §2.4: the moduli must be large enough (2^40–2^60) to tolerate the
        // accumulated error; a 30-bit scale leaves much less headroom.
        let small = InstanceBuilder::new(15, 14, 1)
            .name("small-scale")
            .prime_bits(45, 30, 45)
            .build();
        let large = InstanceBuilder::new(15, 14, 1)
            .name("large-scale")
            .prime_bits(60, 50, 60)
            .build();
        let p_small = NoiseTracker::precision_after_depth(&small, 6);
        let p_large = NoiseTracker::precision_after_depth(&large, 6);
        assert!(p_large > p_small + 10.0, "{p_large} vs {p_small}");
    }

    #[test]
    fn additions_and_rotations_are_cheap() {
        let instance = ins();
        let mut t = NoiseTracker::fresh(&instance);
        let before = t.precision_bits();
        let other = NoiseTracker::fresh(&instance);
        for _ in 0..16 {
            t.add(&other);
            t.rotate(&instance);
        }
        // Dozens of additions/rotations cost only a handful of bits.
        assert!(before - t.precision_bits() < 25.0);
        assert!(t.precision_bits() > 10.0);
    }
}
