/// Breakdown of the modular-multiplication count of one HMult (tensor product
/// plus key-switching), the quantity Fig. 3(b) reports as "relative
/// complexity".
///
/// Counts are in units of modular multiplications (a butterfly counts as one,
/// a modular multiply-accumulate counts as one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComplexityBreakdown {
    /// Forward NTT multiplications.
    pub ntt: u64,
    /// Inverse NTT multiplications.
    pub intt: u64,
    /// Base-conversion (BConv) multiplications (both parts).
    pub bconv: u64,
    /// Everything else: tensor product, evk products, SSA, rescale.
    pub others: u64,
}

impl ComplexityBreakdown {
    /// Total multiplication count.
    pub fn total(&self) -> u64 {
        self.ntt + self.intt + self.bconv + self.others
    }

    /// Fraction of the total taken by each category, in the order
    /// `(bconv, ntt, intt, others)` to match Fig. 3(b)'s legend.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let t = self.total() as f64;
        (
            self.bconv as f64 / t,
            self.ntt as f64 / t,
            self.intt as f64 / t,
            self.others as f64 / t,
        )
    }
}

/// Modular-multiplication complexity of an HMult on a ciphertext at level
/// `level` for a ring of degree `n` with `num_special` special primes and the
/// given `dnum` (Fig. 3(a)'s dataflow, counted exactly as the simulator
/// schedules it).
pub fn hmult_complexity(
    n: usize,
    level: usize,
    num_special: usize,
    dnum: usize,
) -> ComplexityBreakdown {
    assert!(n.is_power_of_two(), "ring degree must be a power of two");
    let n = n as u64;
    let log_n = n.trailing_zeros() as u64;
    let limb_ntt = n / 2 * log_n; // muls per limb transform
    let l1 = level as u64 + 1; // ℓ + 1
    let k = num_special as u64;
    let dnum_l = (level as u64 + 1).div_ceil(k).min(dnum as u64);

    // Tensor product: d0 (1 mul), d1 (2 muls), d2 (1 mul) per limb.
    let tensor = 4 * l1 * n;
    // ModUp per slice: iNTT of the slice limbs, BConv to the complement, NTT of
    // the converted limbs.
    let mut intt_limbs = 0u64;
    let mut ntt_limbs = 0u64;
    let mut bconv = 0u64;
    for j in 0..dnum_l {
        let lo = j * k;
        let hi = ((j + 1) * k).min(l1);
        let slice = hi - lo;
        let target = (l1 - slice) + k;
        intt_limbs += slice;
        ntt_limbs += target;
        bconv += slice * n + slice * target * n;
    }
    // evk inner products and accumulation: 2 polynomials × (ℓ+1+k) limbs × dnum_l.
    let evk_mults = 2 * dnum_l * (l1 + k) * n;
    // ModDown for ax and bx: iNTT of the k special limbs, BConv to Cℓ, NTT of
    // the converted limbs, then the P^{-1} scaling (SSA).
    intt_limbs += 2 * k;
    ntt_limbs += 2 * l1;
    bconv += 2 * (k * n + k * l1 * n);
    let ssa = 2 * l1 * n;

    ComplexityBreakdown {
        ntt: ntt_limbs * limb_ntt,
        intt: intt_limbs * limb_ntt,
        bconv,
        others: tensor + evk_mults + ssa,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bconv_share_shrinks_as_dnum_grows() {
        // Fig. 3(b): the relative complexity of BConv falls from its dnum = 1
        // peak towards ~12% at dnum = max (with the level budget adjusted per
        // dnum as in the paper's λ-matched instances).
        let n = 1 << 17;
        let share = |level: usize, k: usize, dnum: usize| {
            let c = hmult_complexity(n, level, k, dnum);
            c.fractions().0
        };
        let d1 = share(27, 28, 1);
        let d3 = share(44, 15, 3);
        let dmax = share(60, 1, 61);
        assert!(d1 > d3, "BConv share should fall with dnum: {d1} vs {d3}");
        assert!(d3 > dmax);
        assert!(
            dmax < 0.15,
            "dnum=max BConv share should be ~12%, got {dmax}"
        );
    }

    #[test]
    fn ntt_dominates_at_max_dnum() {
        let c = hmult_complexity(1 << 17, 60, 1, 61);
        let (bconv, ntt, intt, _) = c.fractions();
        assert!(ntt + intt > 0.6);
        assert!(bconv < ntt);
    }

    #[test]
    fn totals_scale_with_ring_degree() {
        let small = hmult_complexity(1 << 14, 20, 21, 1).total();
        let large = hmult_complexity(1 << 15, 20, 21, 1).total();
        assert!(large > 2 * small - small / 4); // ~2x plus the log N factor
    }

    #[test]
    fn eq10_butterfly_count_consistency() {
        // The (i)NTT butterflies of our breakdown should match the Eq. 10
        // numerator (dnum+2)·(k+ℓ+1)·(N/2)·log N within ~20%.
        let n = 1u64 << 17;
        let c = hmult_complexity(1 << 17, 27, 28, 1);
        let eq10 = 3 * 56 * (n / 2) * 17;
        let ours = c.ntt + c.intt;
        let ratio = ours as f64 / eq10 as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio = {ratio}");
    }
}
