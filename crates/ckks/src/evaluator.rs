use std::borrow::Cow;
use std::collections::BTreeMap;

use bts_math::AutomorphismTable;

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::context::CkksContext;
use crate::encoding::Complex;
use crate::error::CkksError;
use crate::keys::KeyBundle;

/// Relative scale mismatch tolerated when adding ciphertexts. Scales drift by
/// roughly `|Δ - q_i| / Δ` per rescale because the scaling primes are only
/// approximately equal to Δ; deep circuits (bootstrapping) accumulate a few
/// parts in 10^4 of drift, which we fold into the message error rather than
/// rejecting the operation.
const SCALE_TOLERANCE: f64 = 5e-3;

/// Evaluates homomorphic operations on ciphertexts: the HAdd / HMult / HRot /
/// HRescale / CMult / PMult primitives of §2.3, plus homomorphic linear
/// transforms (the building block of bootstrapping's CoeffToSlot/SlotToCoeff)
/// and polynomial evaluation.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator<'a> {
    context: &'a CkksContext,
    keys: &'a KeyBundle,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over a context and key bundle.
    pub fn new(context: &'a CkksContext, keys: &'a KeyBundle) -> Self {
        Self { context, keys }
    }

    /// The bound context.
    pub fn context(&self) -> &CkksContext {
        self.context
    }

    fn check_scales(a: f64, b: f64) -> crate::Result<()> {
        // A zero (or negative / non-finite) scale means the ciphertext no
        // longer encodes anything meaningful; comparing two such scales would
        // evaluate `0.0 / 0.0 > tol`, and NaN comparisons are always false, so
        // the mismatch would slip through silently. Reject it explicitly.
        if !(a.is_finite() && b.is_finite() && a > 0.0 && b > 0.0) {
            return Err(CkksError::OperandMismatch(format!(
                "non-positive or non-finite scale: {a} vs {b}"
            )));
        }
        if (a - b).abs() / a.max(b) > SCALE_TOLERANCE {
            return Err(CkksError::OperandMismatch(format!(
                "scales differ: {a} vs {b}"
            )));
        }
        Ok(())
    }

    /// Drops limbs so the ciphertext sits at `level` (no scaling involved).
    ///
    /// # Errors
    ///
    /// Fails if the ciphertext is already below `level`.
    pub fn level_reduce(&self, ct: &Ciphertext, level: usize) -> crate::Result<Ciphertext> {
        if level > ct.level {
            return Err(CkksError::OperandMismatch(format!(
                "cannot raise level {} to {level} by dropping limbs",
                ct.level
            )));
        }
        Ok(Ciphertext::new(
            ct.c0.keep_limbs(level + 1),
            ct.c1.keep_limbs(level + 1),
            level,
            ct.scale,
        ))
    }

    /// Borrowing variant of [`Evaluator::level_reduce`]: returns the input
    /// itself when it is already at `level`, avoiding two full polynomial
    /// copies per operand in the common equal-level case.
    fn level_reduce_cow<'c>(
        &self,
        ct: &'c Ciphertext,
        level: usize,
    ) -> crate::Result<Cow<'c, Ciphertext>> {
        if level == ct.level {
            return Ok(Cow::Borrowed(ct));
        }
        Ok(Cow::Owned(self.level_reduce(ct, level)?))
    }

    fn align<'c>(
        &self,
        a: &'c Ciphertext,
        b: &'c Ciphertext,
    ) -> crate::Result<(Cow<'c, Ciphertext>, Cow<'c, Ciphertext>)> {
        let level = a.level.min(b.level);
        Ok((
            self.level_reduce_cow(a, level)?,
            self.level_reduce_cow(b, level)?,
        ))
    }

    /// HAdd: element-wise addition (Eq. 2).
    ///
    /// # Errors
    ///
    /// Fails on scale mismatch.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> crate::Result<Ciphertext> {
        Self::check_scales(a.scale, b.scale)?;
        let (a, b) = self.align(a, b)?;
        Ok(Ciphertext::new(
            a.c0.add(&b.c0)?,
            a.c1.add(&b.c1)?,
            a.level,
            a.scale,
        ))
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Fails on scale mismatch.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> crate::Result<Ciphertext> {
        Self::check_scales(a.scale, b.scale)?;
        let (a, b) = self.align(a, b)?;
        Ok(Ciphertext::new(
            a.c0.sub(&b.c0)?,
            a.c1.sub(&b.c1)?,
            a.level,
            a.scale,
        ))
    }

    /// Negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        Ciphertext::new(a.c0.neg(), a.c1.neg(), a.level, a.scale)
    }

    /// HMult: tensor product followed by key-switching with the
    /// relinearization key (Eq. 3/4). The output scale is the product of the
    /// input scales; call [`Evaluator::rescale`] afterwards to bring it back.
    ///
    /// # Errors
    ///
    /// Propagates key-switching failures.
    pub fn mul(&self, a: &Ciphertext, b: &Ciphertext) -> crate::Result<Ciphertext> {
        let (a, b) = self.align(a, b)?;
        let mut d0 = a.c0.mul(&b.c0)?;
        let mut d1 = a.c0.mul(&b.c1)?;
        d1.fused_mul_add_assign(&a.c1, &b.c0)?;
        let d2 = a.c1.mul(&b.c1)?;
        let (kb, ka) = self.context.key_switch(&d2, self.keys.relin())?;
        d0.add_assign(&kb)?;
        d1.add_assign(&ka)?;
        Ok(Ciphertext::new(d0, d1, a.level, a.scale * b.scale))
    }

    /// Squares a ciphertext (same flow as [`Evaluator::mul`]).
    ///
    /// # Errors
    ///
    /// Propagates key-switching failures.
    pub fn square(&self, a: &Ciphertext) -> crate::Result<Ciphertext> {
        self.mul(a, a)
    }

    /// PMult: multiplies by a plaintext polynomial. The output scale is the
    /// product of the scales.
    ///
    /// # Errors
    ///
    /// Fails if the plaintext level is below the ciphertext level.
    pub fn mul_plain(&self, a: &Ciphertext, p: &Plaintext) -> crate::Result<Ciphertext> {
        let level = a.level.min(p.level);
        let a = self.level_reduce(a, level)?;
        let p_poly = p.poly.keep_limbs(level + 1);
        Ok(Ciphertext::new(
            a.c0.mul(&p_poly)?,
            a.c1.mul(&p_poly)?,
            level,
            a.scale * p.scale,
        ))
    }

    /// PAdd: adds a plaintext polynomial.
    ///
    /// # Errors
    ///
    /// Fails on scale mismatch.
    pub fn add_plain(&self, a: &Ciphertext, p: &Plaintext) -> crate::Result<Ciphertext> {
        Self::check_scales(a.scale, p.scale)?;
        let level = a.level.min(p.level);
        let a = self.level_reduce(a, level)?;
        let p_poly = p.poly.keep_limbs(level + 1);
        Ok(Ciphertext::new(
            a.c0.add(&p_poly)?,
            a.c1.clone(),
            level,
            a.scale,
        ))
    }

    /// CMult: multiplies every slot by a real constant. The constant is encoded
    /// at the context scale, so the output scale is `ct.scale · Δ`.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures.
    pub fn mul_const(&self, a: &Ciphertext, value: f64) -> crate::Result<Ciphertext> {
        let pt =
            self.context
                .encode_at(&[Complex::new(value, 0.0)], a.level, self.context.scale())?;
        self.mul_plain(a, &pt)
    }

    /// CAdd: adds a real constant to every slot.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures.
    pub fn add_const(&self, a: &Ciphertext, value: f64) -> crate::Result<Ciphertext> {
        let pt = self
            .context
            .encode_at(&[Complex::new(value, 0.0)], a.level, a.scale)?;
        self.add_plain(a, &pt)
    }

    /// HRescale: divides the ciphertext by the last prime modulus, dropping one
    /// level and dividing the scale by `q_ℓ` (§2.4).
    ///
    /// # Errors
    ///
    /// Fails if the ciphertext is at level 0.
    pub fn rescale(&self, a: &Ciphertext) -> crate::Result<Ciphertext> {
        if a.level == 0 {
            return Err(CkksError::LevelExhausted {
                level: 0,
                required: 1,
            });
        }
        let last = a.level;
        let q_last = self.context.q_modulus(last);
        let new_level = last - 1;
        let n = self.context.degree();
        let inverses = self.context.rescale_constants(last);
        let rescale_poly = |poly: &bts_math::RnsPoly| -> crate::Result<bts_math::RnsPoly> {
            let mut work = poly.clone();
            work.to_coefficient();
            // Keep the borrowed limb, truncate the rest in place (consuming
            // restriction — no per-limb copies), rescale in place.
            let last_limb = work.limb(last).to_vec();
            let mut kept = work.into_keep_limbs(new_level + 1);
            let basis = kept.basis().clone();
            bts_math::par::par_limbs(
                kept.data_mut().chunks_exact_mut(n).collect(),
                |i, limb: &mut [u64]| {
                    let qi = basis.modulus(i);
                    let q_last_inv = qi.shoup(inverses[i]);
                    for (coeff, &borrowed) in limb.iter_mut().zip(last_limb.iter()) {
                        *coeff = qi.mul_shoup(qi.sub(*coeff, qi.reduce(borrowed)), &q_last_inv);
                    }
                },
            );
            kept.to_ntt();
            Ok(kept)
        };
        Ok(Ciphertext::new(
            rescale_poly(&a.c0)?,
            rescale_poly(&a.c1)?,
            new_level,
            a.scale / q_last as f64,
        ))
    }

    /// Multiplies two ciphertexts and immediately rescales — the most common
    /// composite in applications.
    ///
    /// # Errors
    ///
    /// Propagates multiplication and rescaling failures.
    pub fn mul_rescale(&self, a: &Ciphertext, b: &Ciphertext) -> crate::Result<Ciphertext> {
        self.rescale(&self.mul(a, b)?)
    }

    /// HRot: rotates the message vector by `r` slots (Eq. 5/6) using the
    /// rotation key generated for `r`.
    ///
    /// # Errors
    ///
    /// Fails with [`CkksError::MissingKey`] if no key for `r` exists.
    pub fn rotate(&self, a: &Ciphertext, r: i64) -> crate::Result<Ciphertext> {
        if r == 0 {
            return Ok(a.clone());
        }
        let key = self
            .keys
            .rotation(r)
            .ok_or_else(|| CkksError::MissingKey(format!("rotation key for r = {r}")))?;
        let table =
            AutomorphismTable::from_rotation(self.context.degree(), r).map_err(CkksError::Math)?;
        let mut perm_scratch = Vec::new();
        let mut c0_rot = a.c0.clone();
        c0_rot.automorphism_apply(&table, &mut perm_scratch);
        let mut c1_rot = a.c1.clone();
        c1_rot.automorphism_apply(&table, &mut perm_scratch);
        let (kb, ka) = self.context.key_switch(&c1_rot, key)?;
        c0_rot.add_assign(&kb)?;
        Ok(Ciphertext::new(c0_rot, ka, a.level, a.scale))
    }

    /// Complex conjugation of every slot.
    ///
    /// # Errors
    ///
    /// Fails with [`CkksError::MissingKey`] if the conjugation key is missing.
    pub fn conjugate(&self, a: &Ciphertext) -> crate::Result<Ciphertext> {
        let key = self
            .keys
            .conjugation()
            .ok_or_else(|| CkksError::MissingKey("conjugation key".to_string()))?;
        let g = bts_math::galois_element(0, self.context.degree(), true);
        let table = AutomorphismTable::new(self.context.degree(), g).map_err(CkksError::Math)?;
        let mut perm_scratch = Vec::new();
        let mut c0_rot = a.c0.clone();
        c0_rot.automorphism_apply(&table, &mut perm_scratch);
        let mut c1_rot = a.c1.clone();
        c1_rot.automorphism_apply(&table, &mut perm_scratch);
        let (kb, ka) = self.context.key_switch(&c1_rot, key)?;
        c0_rot.add_assign(&kb)?;
        Ok(Ciphertext::new(c0_rot, ka, a.level, a.scale))
    }

    /// Applies a homomorphic linear transform (matrix–vector product in slot
    /// space) expressed by its generalized diagonals, consuming one level.
    ///
    /// # Errors
    ///
    /// Fails if a required rotation key is missing.
    pub fn linear_transform(
        &self,
        a: &Ciphertext,
        transform: &LinearTransform,
    ) -> crate::Result<Ciphertext> {
        let mut acc: Option<Ciphertext> = None;
        for (&rotation, diag) in &transform.diagonals {
            let rotated = self.rotate(a, rotation)?;
            let pt = self
                .context
                .encode_at(diag, rotated.level, self.context.scale())?;
            let term = self.mul_plain(&rotated, &pt)?;
            acc = Some(match acc {
                None => term,
                Some(prev) => self.add(&prev, &term)?,
            });
        }
        let acc = acc.ok_or_else(|| {
            CkksError::InvalidParameters("linear transform has no diagonals".to_string())
        })?;
        self.rescale(&acc)
    }

    /// Evaluates a real-coefficient polynomial `Σ c_i x^i` on a ciphertext via
    /// Horner's rule, consuming `deg` levels.
    ///
    /// # Errors
    ///
    /// Fails if the ciphertext runs out of levels.
    pub fn eval_polynomial(&self, x: &Ciphertext, coeffs: &[f64]) -> crate::Result<Ciphertext> {
        if coeffs.len() < 2 {
            return Err(CkksError::InvalidParameters(
                "polynomial must have degree at least 1".to_string(),
            ));
        }
        let degree = coeffs.len() - 1;
        if x.level < degree {
            return Err(CkksError::LevelExhausted {
                level: x.level,
                required: degree,
            });
        }
        // Horner: acc = c_d·x + c_{d-1}; then repeatedly acc = acc·x + c_i.
        let mut acc = self.rescale(&self.mul_const(x, coeffs[degree])?)?;
        acc = self.add_const(&acc, coeffs[degree - 1])?;
        for i in (0..degree - 1).rev() {
            let x_aligned = self.level_reduce(x, acc.level)?;
            acc = self.rescale(&self.mul(&acc, &x_aligned)?)?;
            acc = self.add_const(&acc, coeffs[i])?;
        }
        Ok(acc)
    }

    /// Access to the bound key bundle (used by the bootstrapping driver).
    pub fn keys(&self) -> &KeyBundle {
        self.keys
    }
}

/// A homomorphic linear transform described by its generalized diagonals:
/// `out = Σ_r diag_r ⊙ rot(in, r)`. This is the primitive both CoeffToSlot and
/// SlotToCoeff reduce to, and the op pattern that dominates bootstrapping's
/// HRot count (§3.3).
#[derive(Debug, Clone)]
pub struct LinearTransform {
    diagonals: BTreeMap<i64, Vec<Complex>>,
}

impl LinearTransform {
    /// Builds a transform from an explicit (dense) `slots × slots` matrix,
    /// extracting its non-zero generalized diagonals.
    pub fn from_matrix(matrix: &[Vec<Complex>]) -> Self {
        let slots = matrix.len();
        let mut diagonals = BTreeMap::new();
        for r in 0..slots {
            let diag: Vec<Complex> = (0..slots).map(|i| matrix[i][(i + r) % slots]).collect();
            if diag.iter().any(|c| c.abs() > 1e-12) {
                diagonals.insert(r as i64, diag);
            }
        }
        Self { diagonals }
    }

    /// Builds a transform directly from its non-zero diagonals.
    pub fn from_diagonals(diagonals: BTreeMap<i64, Vec<Complex>>) -> Self {
        Self { diagonals }
    }

    /// The rotation amounts (diagonal indices) this transform needs keys for.
    pub fn rotations(&self) -> Vec<i64> {
        self.diagonals.keys().copied().filter(|&r| r != 0).collect()
    }

    /// Number of non-zero diagonals.
    pub fn diagonal_count(&self) -> usize {
        self.diagonals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::CkksContext;
    use rand::SeedableRng;

    #[test]
    fn zero_scales_are_rejected_instead_of_nan_passing() {
        // (0 - 0) / max(0, 0) is NaN, and `NaN > tol` is false, so before the
        // guard two zero-scale ciphertexts silently passed the mismatch check.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let ctx = CkksContext::new_toy(1 << 10, 3, 2).unwrap();
        let (sk, keys) = ctx.generate_keys(&mut rng).unwrap();
        let eval = ctx.evaluator(&keys);
        let msg = vec![Complex::new(0.25, 0.0); ctx.slots()];
        let ct = ctx
            .encrypt(&ctx.encode(&msg).unwrap(), &sk, &mut rng)
            .unwrap();
        let broken = Ciphertext::new(ct.c0().clone(), ct.c1().clone(), ct.level(), 0.0);
        for result in [
            eval.add(&broken, &broken),
            eval.sub(&broken, &broken),
            eval.add(&broken, &ct),
        ] {
            assert!(
                matches!(result, Err(CkksError::OperandMismatch(_))),
                "zero scales must be an OperandMismatch"
            );
        }
        // Healthy ciphertexts are unaffected.
        assert!(eval.add(&ct, &ct).is_ok());
    }
}
