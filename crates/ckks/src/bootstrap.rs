use bts_math::RnsPoly;

use crate::ciphertext::Ciphertext;
use crate::context::CkksContext;
use crate::encoding::Complex;
use crate::error::CkksError;
use crate::evaluator::{Evaluator, LinearTransform};

/// Configuration of the CKKS bootstrapping pipeline (Han–Ki style, §2.4):
/// ModRaise → CoeffToSlot → EvalMod (approximate modular reduction by q0) →
/// SlotToCoeff.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Degree of the Chebyshev approximation of the scaled sine used by
    /// EvalMod. Higher degrees give more precision and consume more levels.
    pub evalmod_degree: usize,
    /// Half-width K of the approximation interval `[-K, K]`; must dominate the
    /// ∞-norm of the ModRaise overflow integer `I` (≈ O(√h) for a secret of
    /// Hamming weight h).
    pub range_k: f64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            evalmod_degree: 31,
            range_k: 12.0,
        }
    }
}

impl BootstrapConfig {
    /// A shallow configuration for functional tests with sparse secrets
    /// (small overflow range, modest polynomial degree).
    pub fn sparse_test() -> Self {
        Self {
            evalmod_degree: 23,
            range_k: 5.0,
        }
    }

    /// A configuration for end-to-end functional bootstrapping tests: a
    /// degree-39 Chebyshev sine over `[-4, 4]` keeps the EvalMod approximation
    /// error small enough that, combined with a modest `q0/Δ` ratio, the
    /// refreshed message is recovered to a couple of decimal digits. Requires a
    /// very sparse secret (Hamming weight ≲ 4) so the ModRaise overflow stays
    /// inside the interval.
    pub fn functional_test() -> Self {
        Self {
            evalmod_degree: 39,
            range_k: 4.0,
        }
    }

    /// Number of multiplicative levels the bootstrap consumes:
    /// CoeffToSlot (1) + real/imag split (1) + Clenshaw (degree) +
    /// recombination (1) + SlotToCoeff (1).
    pub fn levels_consumed(&self) -> usize {
        self.evalmod_degree + 4
    }
}

/// Bootstrapping driver: refreshes the level of an exhausted ciphertext so
/// that more multiplications can be applied (the op BTS accelerates as a
/// first-class citizen).
#[derive(Debug, Clone)]
pub struct Bootstrapper {
    config: BootstrapConfig,
    coeff_to_slot: LinearTransform,
    slot_to_coeff: LinearTransform,
    /// Chebyshev coefficients of `(q0 / (2πΔ)) · sin(2πv)` on `[-K, K]`.
    cheb_coeffs: Vec<f64>,
}

impl Bootstrapper {
    /// Precomputes the bootstrapping transforms for a context.
    ///
    /// # Errors
    ///
    /// Fails if the context's level budget cannot accommodate
    /// [`BootstrapConfig::levels_consumed`].
    pub fn new(context: &CkksContext, config: BootstrapConfig) -> crate::Result<Self> {
        if context.max_level() < config.levels_consumed() + 1 {
            return Err(CkksError::InvalidParameters(format!(
                "bootstrapping needs {} levels but the context only has {}",
                config.levels_consumed() + 1,
                context.max_level()
            )));
        }
        let slots = context.slots();
        // Build the special-FFT matrix F and its inverse numerically from the
        // encoder. F maps packed coefficients u (u_j = m_j + i·m_{j+N/2}) to
        // slot values; both maps are C-linear in u, so their columns are the
        // images of the complex unit vectors.
        let encoder = context.encoder();
        let mut f_matrix = vec![vec![Complex::default(); slots]; slots];
        let mut f_inv_matrix = vec![vec![Complex::default(); slots]; slots];
        for col in 0..slots {
            // Column `col` of F: decode(real unit coefficient at position col).
            let mut unit_coeffs = vec![0.0f64; context.degree()];
            unit_coeffs[col] = 1.0;
            let decoded = encoder.decode_from_coefficients(&unit_coeffs, 1.0)?;
            for (row, v) in decoded.iter().enumerate() {
                f_matrix[row][col] = *v;
            }
        }
        // F^{-1} via the encoder's inverse FFT: encode the slot-space unit
        // vectors and read off the packed coefficients. Encoding rounds to
        // integers, so use a large scratch scale and divide it back out.
        let scratch_scale = 2f64.powi(52);
        let mut unit_msg = vec![Complex::default(); slots];
        for col in 0..slots {
            unit_msg.iter_mut().for_each(|c| *c = Complex::default());
            unit_msg[col] = Complex::new(1.0, 0.0);
            let coeffs = encoder.encode_to_coefficients(&unit_msg, scratch_scale)?;
            for row in 0..slots {
                f_inv_matrix[row][col] = Complex::new(
                    coeffs[row] / scratch_scale,
                    coeffs[row + slots] / scratch_scale,
                );
            }
        }
        let q0 = context.q_modulus(0) as f64;
        // CoeffToSlot = (Δ/q0)·F^{-1}: the raised ciphertext decodes (at scale
        // Δ) to F·c/Δ where c = Δ·m + q0·I, so applying (Δ/q0)·F^{-1} in slot
        // space leaves the slots holding c/q0 = I + Δ·m/q0 ∈ [-(K+1), K+1] —
        // exactly the argument EvalMod's scaled sine expects. SlotToCoeff = F.
        let c2s_factor = context.scale() / q0;
        let c2s_scaled: Vec<Vec<Complex>> = f_inv_matrix
            .iter()
            .map(|row| row.iter().map(|c| c.scale(c2s_factor)).collect())
            .collect();
        let coeff_to_slot = LinearTransform::from_matrix(&c2s_scaled);
        let slot_to_coeff = LinearTransform::from_matrix(&f_matrix);

        let cheb_coeffs = chebyshev_fit(
            |v| {
                q0 / (2.0 * std::f64::consts::PI * context.scale())
                    * (2.0 * std::f64::consts::PI * v).sin()
            },
            config.range_k,
            config.evalmod_degree,
        );
        Ok(Self {
            config,
            coeff_to_slot,
            slot_to_coeff,
            cheb_coeffs,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &BootstrapConfig {
        &self.config
    }

    /// Rotation amounts for which the key bundle must contain rotation keys
    /// before [`Bootstrapper::bootstrap`] can run.
    pub fn required_rotations(&self) -> Vec<i64> {
        let mut rots: Vec<i64> = self
            .coeff_to_slot
            .rotations()
            .into_iter()
            .chain(self.slot_to_coeff.rotations())
            .collect();
        rots.sort_unstable();
        rots.dedup();
        rots
    }

    /// ModRaise: re-interprets a level-0 ciphertext as a ciphertext on the full
    /// modulus chain. The underlying plaintext becomes `m + q0·I` for a small
    /// integer polynomial `I` (§2.4).
    pub fn mod_raise(&self, context: &CkksContext, ct: &Ciphertext) -> Ciphertext {
        let raise = |poly: &RnsPoly| -> RnsPoly {
            let mut p = poly.keep_limbs(1);
            p.to_coefficient();
            let q0 = context.q_basis().modulus(0);
            let signed: Vec<i64> = p.limb(0).iter().map(|&c| q0.to_signed(c)).collect();
            let full_basis = context.basis_at_level(context.max_level());
            let mut out = RnsPoly::from_signed_coefficients(&full_basis, &signed);
            out.to_ntt();
            out
        };
        Ciphertext::new(
            raise(ct.c0()),
            raise(ct.c1()),
            context.max_level(),
            ct.scale(),
        )
    }

    /// Full bootstrapping: ModRaise → CoeffToSlot → EvalMod → SlotToCoeff.
    /// Returns a ciphertext encrypting (approximately) the same message at a
    /// higher level.
    ///
    /// # Errors
    ///
    /// Fails if required rotation/conjugation keys are missing or the level
    /// budget is insufficient.
    pub fn bootstrap(&self, eval: &Evaluator<'_>, ct: &Ciphertext) -> crate::Result<Ciphertext> {
        let context = eval.context();
        // 1. ModRaise to the top of the chain.
        let raised = self.mod_raise(context, ct);
        // 2. CoeffToSlot: slots now hold (m_j + q0·I_j)/q0 packed as complex.
        let packed = eval.linear_transform(&raised, &self.coeff_to_slot)?;
        // 3. Split real and imaginary parts with a conjugation.
        let conj = eval.conjugate(&packed)?;
        let re_part = eval.rescale(&eval.mul_const(&eval.add(&packed, &conj)?, 0.5)?)?;
        let im_sum = eval.sub(&packed, &conj)?;
        // (x - conj(x)) = 2i·Im(x); multiply by -0.5i to get Im(x).
        let im_part = eval.rescale(&self.mul_imaginary(eval, &im_sum, -0.5)?)?;
        // 4. EvalMod on each part.
        let re_mod = self.eval_mod(eval, &re_part)?;
        let im_mod = self.eval_mod(eval, &im_part)?;
        // 5. Recombine: re + i·im.
        let im_times_i = self.mul_imaginary(eval, &im_mod, 1.0)?;
        let im_times_i = eval.rescale(&im_times_i)?;
        let re_aligned = eval.rescale(&eval.mul_const(&re_mod, 1.0)?)?;
        let combined = eval.add(&re_aligned, &im_times_i)?;
        // 6. SlotToCoeff back to the coefficient encoding. The scale tag is
        // whatever the op chain's bookkeeping produced; the slot values are the
        // refreshed message.
        eval.linear_transform(&combined, &self.slot_to_coeff)
    }

    /// Multiplies every slot by `factor · i` (a purely imaginary constant).
    fn mul_imaginary(
        &self,
        eval: &Evaluator<'_>,
        ct: &Ciphertext,
        factor: f64,
    ) -> crate::Result<Ciphertext> {
        let context = eval.context();
        let pt = context.encode_at(&[Complex::new(0.0, factor)], ct.level(), context.scale())?;
        eval.mul_plain(ct, &pt)
    }

    /// Approximate modular reduction: evaluates the Chebyshev interpolant of
    /// `(q0/(2πΔ))·sin(2πv)` on the ciphertext via the Clenshaw recurrence.
    fn eval_mod(&self, eval: &Evaluator<'_>, ct: &Ciphertext) -> crate::Result<Ciphertext> {
        let k = self.config.range_k;
        // Normalise the argument to [-1, 1].
        let x = eval.rescale(&eval.mul_const(ct, 1.0 / k)?)?;
        clenshaw(eval, &x, &self.cheb_coeffs)
    }
}

/// Chebyshev interpolation coefficients of `f` on `[-k, k]` (degree `degree`).
fn chebyshev_fit(f: impl Fn(f64) -> f64, k: f64, degree: usize) -> Vec<f64> {
    let m = degree + 1;
    let mut coeffs = vec![0.0; m];
    let nodes: Vec<f64> = (0..m)
        .map(|i| (std::f64::consts::PI * (i as f64 + 0.5) / m as f64).cos())
        .collect();
    let values: Vec<f64> = nodes.iter().map(|&t| f(k * t)).collect();
    for (j, c) in coeffs.iter_mut().enumerate() {
        let mut s = 0.0;
        for (i, &v) in values.iter().enumerate() {
            s += v * (std::f64::consts::PI * j as f64 * (i as f64 + 0.5) / m as f64).cos();
        }
        *c = 2.0 * s / m as f64;
    }
    coeffs[0] /= 2.0;
    coeffs
}

/// Homomorphic Clenshaw evaluation of a Chebyshev series at `x` (which must
/// already be normalised to `[-1, 1]`).
fn clenshaw(eval: &Evaluator<'_>, x: &Ciphertext, coeffs: &[f64]) -> crate::Result<Ciphertext> {
    let degree = coeffs.len() - 1;
    // b_{d+1} = 0, b_{d+2} = 0 handled by Options.
    let mut b_next: Option<Ciphertext> = None; // b_{k+1}
    let mut b_next2: Option<Ciphertext> = None; // b_{k+2}
    for k in (1..=degree).rev() {
        let mut term = match &b_next {
            Some(b1) => {
                let x_aligned = eval.level_reduce(x, b1.level())?;
                let two_x_b1 = eval.rescale(&eval.mul(&eval.add(b1, b1)?, &x_aligned)?)?;
                eval.add_const(&two_x_b1, coeffs[k])?
            }
            None => {
                let base = eval.rescale(&eval.mul_const(x, 0.0)?)?;
                eval.add_const(&base, coeffs[k])?
            }
        };
        if let Some(b2) = &b_next2 {
            let b2_aligned = eval.level_reduce(b2, term.level())?;
            term = eval.sub(&term, &b2_aligned)?;
        }
        b_next2 = b_next;
        b_next = Some(term);
    }
    // p(x) = c_0 + x·b_1 - b_2
    let b1 = b_next.expect("degree >= 1");
    let x_aligned = eval.level_reduce(x, b1.level())?;
    let mut result = eval.rescale(&eval.mul(&b1, &x_aligned)?)?;
    result = eval.add_const(&result, coeffs[0])?;
    if let Some(b2) = &b_next2 {
        let b2_aligned = eval.level_reduce(b2, result.level())?;
        result = eval.sub(&result, &b2_aligned)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_fit_reproduces_sine() {
        let k = 5.0;
        let coeffs = chebyshev_fit(|v| (2.0 * std::f64::consts::PI * v).sin(), k, 47);
        // Evaluate the series at a few points and compare against the function.
        let eval_cheb = |t: f64| {
            let x = t / k;
            let mut b1 = 0.0f64;
            let mut b2 = 0.0f64;
            for j in (1..coeffs.len()).rev() {
                let b = coeffs[j] + 2.0 * x * b1 - b2;
                b2 = b1;
                b1 = b;
            }
            coeffs[0] + x * b1 - b2
        };
        for t in [-4.5, -2.3, -0.7, 0.0, 0.4, 1.9, 3.8, 4.9] {
            let expect = (2.0 * std::f64::consts::PI * t).sin();
            assert!(
                (eval_cheb(t) - expect).abs() < 1e-3,
                "t = {t}: {} vs {expect}",
                eval_cheb(t)
            );
        }
    }

    #[test]
    fn config_level_accounting() {
        let cfg = BootstrapConfig::default();
        assert_eq!(cfg.levels_consumed(), 35);
        assert_eq!(BootstrapConfig::sparse_test().levels_consumed(), 27);
    }
}
