use bts_params::BandwidthModel;

/// Why a [`BtsConfig`] was rejected by [`BtsConfig::validate`]: every variant
/// names one field whose value would otherwise surface far downstream as a
/// division-by-zero `NaN` in the cost model or a panic in the scheduler's
/// channel setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `pe_count` is zero — every compute rate divides by it.
    ZeroPeCount,
    /// `pe_cols` or `pe_rows` is zero — the NoC model indexes the grid.
    ZeroPeGridSide,
    /// `pe_cols × pe_rows` does not equal `pe_count`.
    PeGridMismatch {
        /// The configured PE count.
        pe_count: usize,
        /// The product `pe_cols × pe_rows` that should equal it.
        grid: usize,
    },
    /// `frequency_hz` is zero, negative or non-finite.
    InvalidFrequency(f64),
    /// `scratchpad_bytes` is zero — no room for even one temporary limb.
    ZeroScratchpad,
    /// `scratchpad_bw` is zero, negative or non-finite.
    InvalidScratchpadBw(f64),
    /// `noc_bisection_bw` is zero, negative or non-finite.
    InvalidNocBw(f64),
    /// `lsub` is zero — the MMAU rate divides by it.
    ZeroLsub,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroPeCount => write!(f, "pe_count must be at least 1"),
            ConfigError::ZeroPeGridSide => write!(f, "pe_cols and pe_rows must be at least 1"),
            ConfigError::PeGridMismatch { pe_count, grid } => write!(
                f,
                "pe_cols × pe_rows = {grid} does not match pe_count = {pe_count}"
            ),
            ConfigError::InvalidFrequency(v) => {
                write!(f, "frequency_hz = {v} must be finite and positive")
            }
            ConfigError::ZeroScratchpad => write!(f, "scratchpad_bytes must be at least 1"),
            ConfigError::InvalidScratchpadBw(v) => {
                write!(f, "scratchpad_bw = {v} must be finite and positive")
            }
            ConfigError::InvalidNocBw(v) => {
                write!(f, "noc_bisection_bw = {v} must be finite and positive")
            }
            ConfigError::ZeroLsub => write!(f, "lsub must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Named accelerator design points: BTS itself plus the published
/// configurations of three related FHE accelerators, so sweeps can put
/// *architectures* on an axis next to instances and bandwidths ("how many
/// FAB-class FPGAs equal one BTS?").
///
/// The non-BTS presets are approximations: they map each paper's headline
/// resources (clock, on-chip SRAM, off-chip bandwidth, rough compute
/// parallelism) onto the knobs of this repo's BTS-shaped cost model, not
/// cycle-accurate reproductions of those microarchitectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchPreset {
    /// The BTS ASIC design point of the source paper (2,048 PEs at 1.2 GHz,
    /// 512 MiB scratchpad, 1 TB/s HBM).
    Bts,
    /// FAB (HPCA 2023): a bootstrappable-FHE FPGA design on a Xilinx Alveo
    /// U280 — ~300 MHz, ~43 MiB of on-chip URAM/BRAM, ~460 GB/s HBM2.
    Fab,
    /// BASALISC (CHES 2023): a programmable BGV ASIC — ~1 GHz, tens of MiB
    /// of on-chip SRAM, one HBM2E stack.
    Basalisc,
    /// FPT (CCS 2023): a fixed-pipeline torus-FHE bootstrapping FPGA on an
    /// Alveo U280 — ~200 MHz, deeply pipelined, ~460 GB/s HBM2.
    Fpt,
}

impl ArchPreset {
    /// All presets, in display order.
    pub const ALL: [ArchPreset; 4] = [
        ArchPreset::Bts,
        ArchPreset::Fab,
        ArchPreset::Basalisc,
        ArchPreset::Fpt,
    ];

    /// Stable short name (`bts`, `fab`, `basalisc`, `fpt`), used as the
    /// architecture key in sweep rows and figures.
    pub fn name(&self) -> &'static str {
        match self {
            ArchPreset::Bts => "bts",
            ArchPreset::Fab => "fab",
            ArchPreset::Basalisc => "basalisc",
            ArchPreset::Fpt => "fpt",
        }
    }

    /// One-line description of the design point.
    pub fn description(&self) -> &'static str {
        match self {
            ArchPreset::Bts => "BTS ASIC (2048 PE @ 1.2 GHz, 512 MiB, 1 TB/s HBM)",
            ArchPreset::Fab => "FAB FPGA (Alveo U280, 300 MHz, 43 MiB, 460 GB/s HBM2)",
            ArchPreset::Basalisc => "BASALISC ASIC (1 GHz, 64 MiB, 512 GB/s HBM2E)",
            ArchPreset::Fpt => "FPT FPGA (Alveo U280, 200 MHz, 40 MiB, 460 GB/s HBM2)",
        }
    }

    /// The preset's hardware configuration. Always passes
    /// [`BtsConfig::validate`].
    pub fn config(&self) -> BtsConfig {
        match self {
            ArchPreset::Bts => BtsConfig::bts_default(),
            ArchPreset::Fab => BtsConfig::fab(),
            ArchPreset::Basalisc => BtsConfig::basalisc(),
            ArchPreset::Fpt => BtsConfig::fpt(),
        }
    }
}

impl std::fmt::Display for ArchPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hardware configuration of a BTS-style accelerator.
///
/// The default values reproduce the paper's BTS design point (§5, §6.1); the
/// builder-style `with_*` methods express the ablations of Fig. 9 and the
/// scratchpad sweep of Fig. 10. [`ArchPreset`] names this and three related
/// accelerators' published design points.
#[derive(Debug, Clone, PartialEq)]
pub struct BtsConfig {
    /// Number of processing elements (2,048 in BTS).
    pub pe_count: usize,
    /// PE-grid width (n_PE_hor = 64).
    pub pe_cols: usize,
    /// PE-grid height (n_PE_ver = 32).
    pub pe_rows: usize,
    /// Operating frequency of the NTTUs/MMAUs (1.2 GHz).
    pub frequency_hz: f64,
    /// Total scratchpad capacity in bytes (512 MiB).
    pub scratchpad_bytes: u64,
    /// Aggregate scratchpad bandwidth in bytes/s (38.4 TB/s chip-wide).
    pub scratchpad_bw: f64,
    /// Off-chip (HBM) bandwidth model (1 TB/s by default).
    pub hbm: BandwidthModel,
    /// MMAU lane count `l_sub` (4 in BTS, §5.2).
    pub lsub: usize,
    /// Whether BConv is partially overlapped with the preceding iNTT (§5.2);
    /// disabled in the "w/o BConvU overlapping" ablation of Fig. 9.
    pub overlap_bconv_intt: bool,
    /// Bisection bandwidth of the PE-PE NoC in bytes/s (3.6 TB/s).
    pub noc_bisection_bw: f64,
}

impl BtsConfig {
    /// The BTS design point of the paper.
    pub fn bts_default() -> Self {
        Self {
            pe_count: 2048,
            pe_cols: 64,
            pe_rows: 32,
            frequency_hz: 1.2e9,
            scratchpad_bytes: 512 * 1024 * 1024,
            scratchpad_bw: 38.4e12,
            hbm: BandwidthModel::hbm_1tb(),
            lsub: 4,
            overlap_bconv_intt: true,
            noc_bisection_bw: 3.6e12,
        }
    }

    /// The "small BTS" baseline of the Fig. 9 ablation: just enough scratchpad
    /// to hold the temporary data of one HE op and no BConv/iNTT overlap.
    pub fn small_bts(temp_bytes: u64) -> Self {
        Self {
            scratchpad_bytes: temp_bytes,
            overlap_bconv_intt: false,
            ..Self::bts_default()
        }
    }

    /// An approximation of FAB's published design point (HPCA 2023): an FPGA
    /// bootstrappable-FHE accelerator on a Xilinx Alveo U280 — ~300 MHz
    /// fabric clock, ~43 MiB of usable URAM/BRAM, 460 GB/s HBM2, and roughly
    /// a quarter of BTS's butterfly parallelism. The tiny scratchpad means
    /// most ciphertext reuse spills to HBM (the cost model handles a
    /// cache capacity of zero gracefully), which is exactly the FPGA story.
    pub fn fab() -> Self {
        Self {
            pe_count: 512,
            pe_cols: 32,
            pe_rows: 16,
            frequency_hz: 300e6,
            scratchpad_bytes: 43 * 1024 * 1024,
            scratchpad_bw: 2.5e12,
            hbm: BandwidthModel::new(460e9),
            lsub: 2,
            overlap_bconv_intt: true,
            noc_bisection_bw: 0.4e12,
        }
    }

    /// An approximation of BASALISC's published design point (CHES 2023): a
    /// programmable BGV ASIC at ~1 GHz with tens of MiB of on-chip SRAM and
    /// a single HBM2E stack (~512 GB/s).
    pub fn basalisc() -> Self {
        Self {
            pe_count: 1024,
            pe_cols: 32,
            pe_rows: 32,
            frequency_hz: 1.0e9,
            scratchpad_bytes: 64 * 1024 * 1024,
            scratchpad_bw: 12.0e12,
            hbm: BandwidthModel::new(512e9),
            lsub: 2,
            overlap_bconv_intt: true,
            noc_bisection_bw: 1.2e12,
        }
    }

    /// An approximation of FPT's published design point (CCS 2023): a
    /// fixed-pipeline torus-FHE bootstrapping FPGA on an Alveo U280 —
    /// ~200 MHz but very deeply pipelined (modelled as wide, slow lanes),
    /// ~40 MiB of on-chip memory, 460 GB/s HBM2, no iNTT/BConv overlap (the
    /// pipeline is fixed-function rather than dynamically scheduled).
    pub fn fpt() -> Self {
        Self {
            pe_count: 1024,
            pe_cols: 64,
            pe_rows: 16,
            frequency_hz: 200e6,
            scratchpad_bytes: 40 * 1024 * 1024,
            scratchpad_bw: 1.8e12,
            hbm: BandwidthModel::new(460e9),
            lsub: 4,
            overlap_bconv_intt: false,
            noc_bisection_bw: 0.3e12,
        }
    }

    /// Checks every field for values that would otherwise surface downstream
    /// as `NaN` rates, empty scheduler channels or panics: unit counts and
    /// the scratchpad must be non-zero, all bandwidths and the clock must be
    /// finite and strictly positive, and the PE grid must multiply out to
    /// `pe_count`. (The HBM field is constructed through
    /// [`BandwidthModel::new`], which already rejects non-positive values.)
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.pe_count == 0 {
            return Err(ConfigError::ZeroPeCount);
        }
        if self.pe_cols == 0 || self.pe_rows == 0 {
            return Err(ConfigError::ZeroPeGridSide);
        }
        let grid = self.pe_cols * self.pe_rows;
        if grid != self.pe_count {
            return Err(ConfigError::PeGridMismatch {
                pe_count: self.pe_count,
                grid,
            });
        }
        if !(self.frequency_hz.is_finite() && self.frequency_hz > 0.0) {
            return Err(ConfigError::InvalidFrequency(self.frequency_hz));
        }
        if self.scratchpad_bytes == 0 {
            return Err(ConfigError::ZeroScratchpad);
        }
        if !(self.scratchpad_bw.is_finite() && self.scratchpad_bw > 0.0) {
            return Err(ConfigError::InvalidScratchpadBw(self.scratchpad_bw));
        }
        if !(self.noc_bisection_bw.is_finite() && self.noc_bisection_bw > 0.0) {
            return Err(ConfigError::InvalidNocBw(self.noc_bisection_bw));
        }
        if self.lsub == 0 {
            return Err(ConfigError::ZeroLsub);
        }
        Ok(())
    }

    /// Returns a copy with a different scratchpad capacity (Fig. 7a, Fig. 10).
    pub fn with_scratchpad_bytes(mut self, bytes: u64) -> Self {
        self.scratchpad_bytes = bytes;
        self
    }

    /// Returns a copy with a different HBM bandwidth (the 2 TB/s ablation).
    pub fn with_hbm(mut self, hbm: BandwidthModel) -> Self {
        self.hbm = hbm;
        self
    }

    /// Returns a copy with BConv/iNTT overlapping enabled or disabled.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap_bconv_intt = overlap;
        self
    }

    /// Butterflies the whole chip completes per second
    /// (`pe_count × frequency`, one butterfly per NTTU per cycle).
    pub fn butterfly_rate(&self) -> f64 {
        self.pe_count as f64 * self.frequency_hz
    }

    /// Modular MACs the BConvUs complete per second
    /// (`pe_count × l_sub × frequency`).
    pub fn mmau_rate(&self) -> f64 {
        self.pe_count as f64 * self.lsub as f64 * self.frequency_hz
    }

    /// Element-wise modular multiplications per second
    /// (one ModMult per PE per cycle).
    pub fn elementwise_rate(&self) -> f64 {
        self.pe_count as f64 * self.frequency_hz
    }
}

impl Default for BtsConfig {
    fn default() -> Self {
        Self::bts_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design_point() {
        let c = BtsConfig::bts_default();
        assert_eq!(c.pe_count, 2048);
        assert_eq!(c.pe_cols * c.pe_rows, c.pe_count);
        assert_eq!(c.scratchpad_bytes, 512 * 1024 * 1024);
        assert!((c.frequency_hz - 1.2e9).abs() < 1.0);
        // 2048 NTTUs comfortably exceed the Eq. 10 minimum of 1,328.
        let min =
            bts_params::min_nttu_count(&bts_params::CkksInstance::ins1(), c.frequency_hz, c.hbm);
        assert!(c.pe_count as f64 > min);
    }

    #[test]
    fn builders_modify_single_fields() {
        let c = BtsConfig::bts_default()
            .with_scratchpad_bytes(2 << 30)
            .with_overlap(false)
            .with_hbm(BandwidthModel::hbm_2tb());
        assert_eq!(c.scratchpad_bytes, 2 << 30);
        assert!(!c.overlap_bconv_intt);
        assert!((c.hbm.bytes_per_sec() - 2.0e12).abs() < 1.0);
        assert_eq!(c.pe_count, 2048);
    }

    #[test]
    fn rates_scale_with_pe_count() {
        let c = BtsConfig::bts_default();
        assert!((c.butterfly_rate() - 2048.0 * 1.2e9).abs() < 1.0);
        assert!((c.mmau_rate() - 4.0 * c.butterfly_rate()).abs() < 1.0);
    }

    #[test]
    fn every_preset_validates_and_is_distinct() {
        let mut names = std::collections::HashSet::new();
        for preset in ArchPreset::ALL {
            let config = preset.config();
            config.validate().unwrap_or_else(|e| {
                panic!("preset {} fails validation: {e}", preset.name());
            });
            assert!(names.insert(preset.name()), "duplicate preset name");
            assert!(!preset.description().is_empty());
            assert_eq!(preset.to_string(), preset.name());
        }
        // The FPGA presets are materially slower than the BTS ASIC.
        let bts = ArchPreset::Bts.config();
        assert!(ArchPreset::Fab.config().butterfly_rate() < bts.butterfly_rate() / 4.0);
        assert!(ArchPreset::Fpt.config().butterfly_rate() < bts.butterfly_rate() / 4.0);
        assert!(ArchPreset::Basalisc.config().hbm.bytes_per_sec() < bts.hbm.bytes_per_sec());
    }

    #[test]
    fn validate_rejects_zero_pe_count() {
        let mut c = BtsConfig::bts_default();
        c.pe_count = 0;
        c.pe_cols = 0;
        c.pe_rows = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroPeCount));
    }

    #[test]
    fn validate_rejects_zero_grid_side() {
        let mut c = BtsConfig::bts_default();
        c.pe_cols = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroPeGridSide));
        let mut c = BtsConfig::bts_default();
        c.pe_rows = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroPeGridSide));
    }

    #[test]
    fn validate_rejects_grid_mismatch() {
        let mut c = BtsConfig::bts_default();
        c.pe_cols = 63;
        assert_eq!(
            c.validate(),
            Err(ConfigError::PeGridMismatch {
                pe_count: 2048,
                grid: 63 * 32,
            })
        );
    }

    #[test]
    fn validate_rejects_bad_frequency() {
        for bad in [0.0, -1.2e9, f64::NAN, f64::INFINITY] {
            let mut c = BtsConfig::bts_default();
            c.frequency_hz = bad;
            assert!(matches!(
                c.validate(),
                Err(ConfigError::InvalidFrequency(_))
            ));
        }
    }

    #[test]
    fn validate_rejects_zero_scratchpad() {
        let c = BtsConfig::bts_default().with_scratchpad_bytes(0);
        assert_eq!(c.validate(), Err(ConfigError::ZeroScratchpad));
    }

    #[test]
    fn validate_rejects_bad_scratchpad_bw() {
        for bad in [0.0, -38.4e12, f64::NAN] {
            let mut c = BtsConfig::bts_default();
            c.scratchpad_bw = bad;
            assert!(matches!(
                c.validate(),
                Err(ConfigError::InvalidScratchpadBw(_))
            ));
        }
    }

    #[test]
    fn validate_rejects_bad_noc_bw() {
        let mut c = BtsConfig::bts_default();
        c.noc_bisection_bw = -1.0;
        assert!(matches!(c.validate(), Err(ConfigError::InvalidNocBw(_))));
    }

    #[test]
    fn validate_rejects_zero_lsub() {
        let mut c = BtsConfig::bts_default();
        c.lsub = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroLsub));
    }

    #[test]
    fn config_errors_render_their_field() {
        assert!(ConfigError::ZeroPeCount.to_string().contains("pe_count"));
        assert!(ConfigError::InvalidFrequency(-1.0)
            .to_string()
            .contains("frequency_hz"));
        assert!(ConfigError::PeGridMismatch {
            pe_count: 8,
            grid: 6,
        }
        .to_string()
        .contains("pe_count = 8"));
    }
}
