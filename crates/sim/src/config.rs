use bts_params::BandwidthModel;

/// Hardware configuration of a BTS-style accelerator.
///
/// The default values reproduce the paper's BTS design point (§5, §6.1); the
/// builder-style `with_*` methods express the ablations of Fig. 9 and the
/// scratchpad sweep of Fig. 10.
#[derive(Debug, Clone, PartialEq)]
pub struct BtsConfig {
    /// Number of processing elements (2,048 in BTS).
    pub pe_count: usize,
    /// PE-grid width (n_PE_hor = 64).
    pub pe_cols: usize,
    /// PE-grid height (n_PE_ver = 32).
    pub pe_rows: usize,
    /// Operating frequency of the NTTUs/MMAUs (1.2 GHz).
    pub frequency_hz: f64,
    /// Total scratchpad capacity in bytes (512 MiB).
    pub scratchpad_bytes: u64,
    /// Aggregate scratchpad bandwidth in bytes/s (38.4 TB/s chip-wide).
    pub scratchpad_bw: f64,
    /// Off-chip (HBM) bandwidth model (1 TB/s by default).
    pub hbm: BandwidthModel,
    /// MMAU lane count `l_sub` (4 in BTS, §5.2).
    pub lsub: usize,
    /// Whether BConv is partially overlapped with the preceding iNTT (§5.2);
    /// disabled in the "w/o BConvU overlapping" ablation of Fig. 9.
    pub overlap_bconv_intt: bool,
    /// Bisection bandwidth of the PE-PE NoC in bytes/s (3.6 TB/s).
    pub noc_bisection_bw: f64,
}

impl BtsConfig {
    /// The BTS design point of the paper.
    pub fn bts_default() -> Self {
        Self {
            pe_count: 2048,
            pe_cols: 64,
            pe_rows: 32,
            frequency_hz: 1.2e9,
            scratchpad_bytes: 512 * 1024 * 1024,
            scratchpad_bw: 38.4e12,
            hbm: BandwidthModel::hbm_1tb(),
            lsub: 4,
            overlap_bconv_intt: true,
            noc_bisection_bw: 3.6e12,
        }
    }

    /// The "small BTS" baseline of the Fig. 9 ablation: just enough scratchpad
    /// to hold the temporary data of one HE op and no BConv/iNTT overlap.
    pub fn small_bts(temp_bytes: u64) -> Self {
        Self {
            scratchpad_bytes: temp_bytes,
            overlap_bconv_intt: false,
            ..Self::bts_default()
        }
    }

    /// Returns a copy with a different scratchpad capacity (Fig. 7a, Fig. 10).
    pub fn with_scratchpad_bytes(mut self, bytes: u64) -> Self {
        self.scratchpad_bytes = bytes;
        self
    }

    /// Returns a copy with a different HBM bandwidth (the 2 TB/s ablation).
    pub fn with_hbm(mut self, hbm: BandwidthModel) -> Self {
        self.hbm = hbm;
        self
    }

    /// Returns a copy with BConv/iNTT overlapping enabled or disabled.
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap_bconv_intt = overlap;
        self
    }

    /// Butterflies the whole chip completes per second
    /// (`pe_count × frequency`, one butterfly per NTTU per cycle).
    pub fn butterfly_rate(&self) -> f64 {
        self.pe_count as f64 * self.frequency_hz
    }

    /// Modular MACs the BConvUs complete per second
    /// (`pe_count × l_sub × frequency`).
    pub fn mmau_rate(&self) -> f64 {
        self.pe_count as f64 * self.lsub as f64 * self.frequency_hz
    }

    /// Element-wise modular multiplications per second
    /// (one ModMult per PE per cycle).
    pub fn elementwise_rate(&self) -> f64 {
        self.pe_count as f64 * self.frequency_hz
    }
}

impl Default for BtsConfig {
    fn default() -> Self {
        Self::bts_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design_point() {
        let c = BtsConfig::bts_default();
        assert_eq!(c.pe_count, 2048);
        assert_eq!(c.pe_cols * c.pe_rows, c.pe_count);
        assert_eq!(c.scratchpad_bytes, 512 * 1024 * 1024);
        assert!((c.frequency_hz - 1.2e9).abs() < 1.0);
        // 2048 NTTUs comfortably exceed the Eq. 10 minimum of 1,328.
        let min =
            bts_params::min_nttu_count(&bts_params::CkksInstance::ins1(), c.frequency_hz, c.hbm);
        assert!(c.pe_count as f64 > min);
    }

    #[test]
    fn builders_modify_single_fields() {
        let c = BtsConfig::bts_default()
            .with_scratchpad_bytes(2 << 30)
            .with_overlap(false)
            .with_hbm(BandwidthModel::hbm_2tb());
        assert_eq!(c.scratchpad_bytes, 2 << 30);
        assert!(!c.overlap_bconv_intt);
        assert!((c.hbm.bytes_per_sec() - 2.0e12).abs() < 1.0);
        assert_eq!(c.pe_count, 2048);
    }

    #[test]
    fn rates_scale_with_pe_count() {
        let c = BtsConfig::bts_default();
        assert!((c.butterfly_rate() - 2048.0 * 1.2e9).abs() < 1.0);
        assert!((c.mmau_rate() - 4.0 * c.butterfly_rate()).abs() < 1.0);
    }
}
