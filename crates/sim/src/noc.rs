//! Models of the three dedicated on-chip networks of BTS (§5.4): the PE-PE
//! NoC built from per-row/per-column crossbars, the PE-Mem NoC connecting HBM
//! pseudo-channels to PE regions, and the hierarchical broadcast (BrU) NoC
//! that distributes twiddle factors and BConv tables.
//!
//! Each model exposes transfer-time calculations the epoch scheduler uses to
//! decide whether inter-PE exchanges and constant broadcasts can be hidden
//! underneath the compute epochs of the 3D-NTT pipeline (§5.1).

use bts_math::{Ntt3dPlan, TransposePhase};
use bts_params::{CkksInstance, WORD_BYTES};

use crate::config::BtsConfig;

/// The PE-PE interconnect: a logical 2D flattened butterfly in which one
/// shared crossbar serves each row (`xbar_h`, used by the horizontal transpose
/// step of the 3D-NTT) and one serves each column (`xbar_v`, used by the
/// vertical step). Ports are narrow (12 bits in the paper) but every
/// row/column crossbar operates in parallel, so the aggregate bisection
/// bandwidth reaches several TB/s.
#[derive(Debug, Clone, PartialEq)]
pub struct PePeNoc {
    pe_cols: usize,
    pe_rows: usize,
    /// Port width in bits of each crossbar port.
    port_bits: u32,
    /// Crossbar operating frequency in Hz.
    frequency_hz: f64,
}

impl PePeNoc {
    /// The paper's PE-PE NoC: 64×32 grid, 12-bit ports at 1.2 GHz.
    pub fn bts_default() -> Self {
        Self {
            pe_cols: 64,
            pe_rows: 32,
            port_bits: 12,
            frequency_hz: 1.2e9,
        }
    }

    /// Builds a NoC description from a hardware configuration.
    pub fn from_config(config: &BtsConfig) -> Self {
        Self {
            pe_cols: config.pe_cols,
            pe_rows: config.pe_rows,
            port_bits: 12,
            frequency_hz: config.frequency_hz,
        }
    }

    /// Number of vertical crossbars (one per column).
    pub fn vertical_crossbars(&self) -> usize {
        self.pe_cols
    }

    /// Number of horizontal crossbars (one per row).
    pub fn horizontal_crossbars(&self) -> usize {
        self.pe_rows
    }

    /// Radix (port count) of each vertical crossbar.
    pub fn vertical_radix(&self) -> usize {
        self.pe_rows
    }

    /// Radix (port count) of each horizontal crossbar.
    pub fn horizontal_radix(&self) -> usize {
        self.pe_cols
    }

    /// Bytes per second one crossbar port sustains.
    pub fn port_bytes_per_sec(&self) -> f64 {
        self.port_bits as f64 / 8.0 * self.frequency_hz
    }

    /// Aggregate bisection bandwidth in bytes/s: half of the ports of every
    /// crossbar cross the bisection simultaneously. The paper reports 3.6 TB/s
    /// for the default configuration.
    pub fn bisection_bytes_per_sec(&self) -> f64 {
        let vertical_ports = self.vertical_crossbars() * self.vertical_radix();
        let horizontal_ports = self.horizontal_crossbars() * self.horizontal_radix();
        (vertical_ports + horizontal_ports) as f64 / 2.0 * self.port_bytes_per_sec()
    }

    /// Cycles one transpose phase of the 3D-NTT needs for a single residue
    /// polynomial. Every PE injects `exchange_words_per_pe` 64-bit words into
    /// its row/column crossbar through one 12-bit port, so the transfer is
    /// serialized over `ceil(64 / port_bits)` cycles per word.
    pub fn transpose_cycles(&self, plan: &Ntt3dPlan, phase: TransposePhase) -> u64 {
        let words = plan.exchange_words_per_pe(phase);
        let cycles_per_word = (WORD_BYTES * 8).div_ceil(self.port_bits as u64);
        words * cycles_per_word
    }

    /// Seconds one transpose phase takes for a single residue polynomial.
    pub fn transpose_seconds(&self, plan: &Ntt3dPlan, phase: TransposePhase) -> f64 {
        self.transpose_cycles(plan, phase) as f64 / self.frequency_hz
    }

    /// Whether the vertical and horizontal transposes of the epoch-pipelined
    /// 3D-NTT (§5.1) can be fully hidden underneath one compute epoch: both
    /// must finish within `epoch_cycles` because they run on separate NoCs
    /// concurrently with the NTT stages of other residue polynomials.
    pub fn transposes_hidden(&self, plan: &Ntt3dPlan) -> bool {
        let epoch = plan.epoch_cycles();
        self.transpose_cycles(plan, TransposePhase::Vertical) <= epoch
            && self.transpose_cycles(plan, TransposePhase::Horizontal) <= epoch
    }

    /// Cycles the inter-PE permutation of one automorphism takes for a single
    /// residue polynomial. Under the BTS coefficient mapping every PE sends its
    /// whole `N_z`-residue block to exactly one destination PE (§5.5), split
    /// into a vertical and a horizontal hop handled by the two crossbar sets.
    pub fn automorphism_cycles(&self, plan: &Ntt3dPlan) -> u64 {
        let words = plan.residues_per_pe() as u64;
        let cycles_per_word = (WORD_BYTES * 8).div_ceil(self.port_bits as u64);
        // Vertical hop then horizontal hop; each moves the full block once.
        2 * words * cycles_per_word
    }

    /// Seconds for the inter-PE automorphism permutation of a full ciphertext
    /// polynomial at level `level` (all `ℓ+1` residue polynomials), assuming
    /// the per-limb permutations pipeline back to back.
    pub fn automorphism_seconds(&self, plan: &Ntt3dPlan, level: usize) -> f64 {
        (level as u64 + 1) as f64 * self.automorphism_cycles(plan) as f64 / self.frequency_hz
    }
}

/// The PE-Mem NoC: the PE grid is split into regions, each wired to one HBM
/// pseudo-channel, so off-chip traffic never crosses the full chip (§5.4).
#[derive(Debug, Clone, PartialEq)]
pub struct PeMemNoc {
    pe_count: usize,
    /// Number of HBM stacks (2 in BTS).
    stacks: usize,
    /// Pseudo-channels per stack (16 for HBM2e).
    pseudo_channels_per_stack: usize,
    /// Aggregate off-chip bandwidth in bytes/s.
    hbm_bytes_per_sec: f64,
}

impl PeMemNoc {
    /// The paper's configuration: 2,048 PEs, two HBM2e stacks of 16
    /// pseudo-channels each, 1 TB/s aggregate.
    pub fn bts_default() -> Self {
        Self {
            pe_count: 2048,
            stacks: 2,
            pseudo_channels_per_stack: 16,
            hbm_bytes_per_sec: 1e12,
        }
    }

    /// Builds the PE-Mem NoC description from a hardware configuration.
    pub fn from_config(config: &BtsConfig) -> Self {
        Self {
            pe_count: config.pe_count,
            stacks: 2,
            pseudo_channels_per_stack: 16,
            hbm_bytes_per_sec: config.hbm.bytes_per_sec(),
        }
    }

    /// Total number of pseudo-channels, which equals the number of PE regions.
    pub fn regions(&self) -> usize {
        self.stacks * self.pseudo_channels_per_stack
    }

    /// PEs per region (64 in the default configuration).
    pub fn pes_per_region(&self) -> usize {
        self.pe_count / self.regions()
    }

    /// Bandwidth of a single pseudo-channel in bytes/s.
    pub fn channel_bytes_per_sec(&self) -> f64 {
        self.hbm_bytes_per_sec / self.regions() as f64
    }

    /// Seconds to stream `bytes` spread evenly over all pseudo-channels (the
    /// layout the CLP data distribution produces: every limb is striped across
    /// all PEs and therefore across all regions).
    pub fn balanced_stream_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.hbm_bytes_per_sec
    }

    /// Seconds to stream `bytes` that all land in a single region (worst-case
    /// imbalance, e.g. a residue-polynomial-partitioned layout); this is what a
    /// rPLP data distribution would suffer and why BTS stripes by coefficient.
    pub fn single_region_stream_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.channel_bytes_per_sec()
    }

    /// Seconds to stream one evaluation key for a key-switch at `level`.
    pub fn evk_stream_seconds(&self, instance: &CkksInstance, level: usize) -> f64 {
        self.balanced_stream_seconds(instance.evk_bytes_at_level(level))
    }
}

/// The broadcast network: a global BrU loaded with all precomputed constants
/// feeds 128 local BrUs, each of which serves 16 PEs with the higher-digit
/// twiddle tables and the BConv tables they need for the current epoch (§5.4).
#[derive(Debug, Clone, PartialEq)]
pub struct BruNoc {
    pe_count: usize,
    /// Number of local BrUs (repeaters).
    local_brus: usize,
    /// Words each local BrU can deliver to each of its PEs per cycle.
    words_per_cycle: u64,
    /// Operating frequency in Hz (0.6 GHz in Table 3).
    frequency_hz: f64,
}

impl BruNoc {
    /// The paper's configuration: 128 local BrUs serving 16 PEs each at
    /// 0.6 GHz. Each local BrU delivers two words per cycle so that the
    /// higher-digit twiddle table of the next prime modulus (≈ 512 entries
    /// with the default on-the-fly-twiddling decomposition) fits within one
    /// (i)NTT epoch, as §5.1 requires.
    pub fn bts_default() -> Self {
        Self {
            pe_count: 2048,
            local_brus: 128,
            words_per_cycle: 2,
            frequency_hz: 0.6e9,
        }
    }

    /// PEs served by each local BrU.
    pub fn pes_per_local_bru(&self) -> usize {
        self.pe_count / self.local_brus
    }

    /// Seconds to broadcast a table of `words` 64-bit words to every PE (the
    /// same data goes to all PEs, so the broadcast is limited by one local
    /// BrU's delivery rate, not by the PE count).
    pub fn broadcast_seconds(&self, words: u64) -> f64 {
        words as f64 / (self.words_per_cycle as f64 * self.frequency_hz)
    }

    /// Whether broadcasting the higher-digit twiddle table for the next
    /// (i)NTT epoch fits within one epoch of `epoch_cycles` NTTU cycles at
    /// `nttu_frequency_hz`.
    pub fn twiddle_broadcast_hidden(
        &self,
        higher_digit_words: u64,
        epoch_cycles: u64,
        nttu_frequency_hz: f64,
    ) -> bool {
        self.broadcast_seconds(higher_digit_words) <= epoch_cycles as f64 / nttu_frequency_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan17() -> Ntt3dPlan {
        Ntt3dPlan::bts_default(1 << 17).unwrap()
    }

    #[test]
    fn bisection_bandwidth_matches_paper() {
        // §6.1: "crossbars ... 12-bit wide ports ... 1.2GHz, providing a
        // bisection bandwidth of 3.6TB/s".
        let noc = PePeNoc::bts_default();
        let bisection = noc.bisection_bytes_per_sec();
        assert!(
            (bisection - 3.6e12).abs() / 3.6e12 < 0.05,
            "bisection = {bisection:e}"
        );
        assert_eq!(noc.vertical_crossbars(), 64);
        assert_eq!(noc.horizontal_crossbars(), 32);
    }

    #[test]
    fn transposes_hide_under_the_epoch() {
        // §5.1: the vertical and horizontal exchanges are hidden by
        // coarse-grained epoch pipelining; this only works if each transpose
        // fits within one epoch.
        let noc = PePeNoc::bts_default();
        let plan = plan17();
        assert!(noc.transposes_hidden(&plan));
        let v = noc.transpose_cycles(&plan, TransposePhase::Vertical);
        let h = noc.transpose_cycles(&plan, TransposePhase::Horizontal);
        assert!(v <= plan.epoch_cycles());
        assert!(h <= plan.epoch_cycles());
        assert!(h >= v, "horizontal moves at least as much data");
    }

    #[test]
    fn narrow_ports_would_not_hide_transposes() {
        // Sanity check of the model: with 1-bit ports the exchange would take
        // 64 cycles per word and could no longer hide under the epoch.
        let mut noc = PePeNoc::bts_default();
        noc.port_bits = 1;
        assert!(!noc.transposes_hidden(&plan17()));
    }

    #[test]
    fn automorphism_permutation_is_cheaper_than_two_transposes() {
        let noc = PePeNoc::bts_default();
        let plan = plan17();
        let auto = noc.automorphism_cycles(&plan);
        let transposes = noc.transpose_cycles(&plan, TransposePhase::Vertical)
            + noc.transpose_cycles(&plan, TransposePhase::Horizontal);
        // The permutation moves each block twice (vertical + horizontal hop),
        // roughly the same volume as the two NTT transposes.
        assert!(auto <= transposes + 2 * plan.residues_per_pe() as u64 * 6);
        assert!(noc.automorphism_seconds(&plan, 27) > 0.0);
    }

    #[test]
    fn pe_mem_regions_match_paper() {
        // §5.4: 32 regions of 64 PEs, one HBM pseudo-channel each.
        let noc = PeMemNoc::bts_default();
        assert_eq!(noc.regions(), 32);
        assert_eq!(noc.pes_per_region(), 64);
        // Balanced streaming uses the full 1 TB/s; a single region only 1/32.
        let bytes = 112 * 1024 * 1024;
        assert!(
            noc.single_region_stream_seconds(bytes) / noc.balanced_stream_seconds(bytes) > 30.0
        );
    }

    #[test]
    fn evk_stream_time_matches_minimum_bound() {
        let noc = PeMemNoc::bts_default();
        let ins = CkksInstance::ins1();
        let t = noc.evk_stream_seconds(&ins, ins.max_level());
        // ~117 µs for the 112 MiB INS-1 evk at 1 TB/s.
        assert!((t - 117.4e-6).abs() < 2e-6, "t = {t}");
    }

    #[test]
    fn bru_broadcast_hides_under_epoch() {
        // §5.1: the BrU broadcasts one higher-digit twiddle table per (i)NTT
        // epoch. With on-the-fly twiddling the higher-digit table has
        // (N-1)/m ≈ N/m entries; for m = 256 at N = 2^17 that is 512 words.
        let bru = BruNoc::bts_default();
        let plan = plan17();
        let higher_digit_words = (plan.degree() / 256) as u64;
        assert!(bru.twiddle_broadcast_hidden(higher_digit_words, plan.epoch_cycles(), 1.2e9));
        assert_eq!(bru.pes_per_local_bru(), 16);
        // Broadcasting a full N-entry table would not hide.
        assert!(!bru.twiddle_broadcast_hidden(plan.degree() as u64, plan.epoch_cycles(), 1.2e9));
    }
}
