//! Function-level dataflow of one key-switching operation (Fig. 3(a)) and its
//! epoch-level schedule on the BTS PE array — the machinery behind the Fig. 8
//! timeline: which functional unit executes which phase (iNTT.d2, BConv.d2,
//! NTT.d2, the evk inner products, iNTT/BConv/NTT of the ModDown, SSA), how
//! the phases overlap, and how the evaluation-key stream from HBM paces the
//! whole operation.

use bts_params::CkksInstance;

use crate::config::BtsConfig;
use crate::pe::ProcessingElement;

/// A functional-unit class inside the PE (the rows of the Fig. 8 timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FunctionalUnit {
    /// The HBM interface streaming evaluation-key limbs.
    Hbm,
    /// The NTT unit.
    Nttu,
    /// The base-conversion unit (ModMult + MMAU).
    BconvU,
    /// The element-wise ModMult/ModAdd pair.
    ElementWise,
}

/// One phase of the key-switching dataflow, scheduled on a functional unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Descriptive name following the paper's Fig. 3(a)/Fig. 8 labels.
    pub name: String,
    /// The functional unit the phase occupies.
    pub unit: FunctionalUnit,
    /// Start time in seconds from the beginning of the op.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
    /// Number of residue-polynomial limbs the phase processes.
    pub limbs: usize,
}

impl Phase {
    /// Phase duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The scheduled dataflow of one key-switching operation.
#[derive(Debug, Clone, PartialEq)]
pub struct KeySwitchSchedule {
    /// All phases in start-time order.
    pub phases: Vec<Phase>,
    /// Total latency of the operation in seconds (the critical path).
    pub latency: f64,
    /// Seconds the evaluation-key stream occupies HBM.
    pub evk_stream_seconds: f64,
}

impl KeySwitchSchedule {
    /// Builds the schedule of one HMult (`is_mult = true`) or HRot key-switch
    /// at ciphertext level `level`.
    ///
    /// The schedule follows §5.1/§5.2: the ModUp iNTT → BConv → NTT chain runs
    /// first (BConv partially overlapped with the iNTT when the configuration
    /// enables it), the evk inner products run on the element-wise units as the
    /// evk limbs arrive from HBM, and the ModDown chain plus SSA close the op.
    /// The op's latency is the maximum of the compute critical path and the evk
    /// streaming time (§3.3).
    pub fn build(config: &BtsConfig, instance: &CkksInstance, level: usize, is_mult: bool) -> Self {
        let pe = ProcessingElement::from_config(config);
        let l1 = level + 1;
        let k = instance.num_special();
        let dnum_l = instance.dnum_at_level(level);
        let per_limb = pe.nttu_cycles_per_limb(instance) as f64 / config.frequency_hz;
        let bconv_limb = |from: usize, to: usize| {
            pe.mmau_cycles_for_bconv(instance, from, to) as f64 / config.frequency_hz
        };
        let ew_limb = pe.residues_per_pe(instance) as f64 / config.frequency_hz;
        let evk_stream_seconds =
            instance.evk_bytes_at_level(level) as f64 / config.hbm.bytes_per_sec();

        let mut phases = Vec::new();
        let mut t = 0.0f64;

        // Tensor product (HMult only) on the element-wise units.
        if is_mult {
            let dur = 4.0 * l1 as f64 * ew_limb;
            phases.push(Phase {
                name: "d0/d1/d2 tensor product".to_string(),
                unit: FunctionalUnit::ElementWise,
                start: t,
                end: t + dur,
                limbs: l1,
            });
            t += dur;
        }

        // ModUp per decomposition slice: iNTT.d2 → BConv.d2 → NTT.d2.
        let mut nttu_free = t;
        let mut bconv_free = t;
        for j in 0..dnum_l {
            let lo = j * k;
            let hi = ((j + 1) * k).min(l1);
            let slice = hi - lo;
            let target = (l1 - slice) + k;

            let intt_dur = slice as f64 * per_limb;
            phases.push(Phase {
                name: format!("iNTT.d2 (slice {j})"),
                unit: FunctionalUnit::Nttu,
                start: nttu_free,
                end: nttu_free + intt_dur,
                limbs: slice,
            });
            let intt_end = nttu_free + intt_dur;
            nttu_free = intt_end;

            // BConv starts after l_sub limbs of the iNTT when overlapping is
            // enabled (Eq. 11), otherwise after the full iNTT.
            let bconv_start = if config.overlap_bconv_intt {
                let head = (config.lsub.min(slice)) as f64 * per_limb;
                (phases.last().unwrap().start + head).max(bconv_free)
            } else {
                intt_end.max(bconv_free)
            };
            let bconv_dur = bconv_limb(slice, target);
            phases.push(Phase {
                name: format!("BConv.d2 (slice {j})"),
                unit: FunctionalUnit::BconvU,
                start: bconv_start,
                end: bconv_start + bconv_dur,
                limbs: target,
            });
            bconv_free = bconv_start + bconv_dur;

            let ntt_start = bconv_free.max(nttu_free);
            let ntt_dur = target as f64 * per_limb;
            phases.push(Phase {
                name: format!("NTT.d2 (slice {j})"),
                unit: FunctionalUnit::Nttu,
                start: ntt_start,
                end: ntt_start + ntt_dur,
                limbs: target,
            });
            nttu_free = ntt_start + ntt_dur;
        }

        // evk inner products on the element-wise units, paced by the HBM
        // stream: they cannot finish before either the extended d2 or the evk
        // limbs are available.
        phases.push(Phase {
            name: "load evk (ax, bx)".to_string(),
            unit: FunctionalUnit::Hbm,
            start: 0.0,
            end: evk_stream_seconds,
            limbs: 2 * dnum_l * (l1 + k),
        });
        let inner_dur = 2.0 * dnum_l as f64 * (l1 + k) as f64 * ew_limb;
        let inner_start = nttu_free.min(evk_stream_seconds - inner_dur).max(0.0);
        let inner_end = (inner_start + inner_dur).max(nttu_free);
        phases.push(Phase {
            name: "d2' ⊗ evk.ax/bx".to_string(),
            unit: FunctionalUnit::ElementWise,
            start: inner_start,
            end: inner_end,
            limbs: 2 * dnum_l * (l1 + k),
        });

        // ModDown of both output polynomials: iNTT of the k special limbs,
        // BConv onto the ciphertext base, NTT, then the SSA fusion on the MMAU.
        let mut moddown_free = inner_end.max(nttu_free);
        for poly in ["ax", "bx"] {
            let intt_dur = k as f64 * per_limb;
            phases.push(Phase {
                name: format!("iNTT.{poly}"),
                unit: FunctionalUnit::Nttu,
                start: moddown_free,
                end: moddown_free + intt_dur,
                limbs: k,
            });
            let intt_end = moddown_free + intt_dur;
            let bconv_start = if config.overlap_bconv_intt {
                moddown_free + (config.lsub.min(k)) as f64 * per_limb
            } else {
                intt_end
            };
            let bconv_dur = bconv_limb(k, l1);
            phases.push(Phase {
                name: format!("BConv.{poly}"),
                unit: FunctionalUnit::BconvU,
                start: bconv_start,
                end: bconv_start + bconv_dur,
                limbs: l1,
            });
            let ntt_start = (bconv_start + bconv_dur).max(intt_end);
            let ntt_dur = l1 as f64 * per_limb;
            phases.push(Phase {
                name: format!("NTT.{poly}"),
                unit: FunctionalUnit::Nttu,
                start: ntt_start,
                end: ntt_start + ntt_dur,
                limbs: l1,
            });
            let ssa_start = ntt_start + ntt_dur;
            let ssa_dur = l1 as f64 * ew_limb;
            phases.push(Phase {
                name: format!("SSA.{poly}"),
                unit: FunctionalUnit::BconvU,
                start: ssa_start,
                end: ssa_start + ssa_dur,
                limbs: l1,
            });
            moddown_free = ssa_start + ssa_dur;
        }

        let compute_end = phases
            .iter()
            .filter(|p| p.unit != FunctionalUnit::Hbm)
            .map(|p| p.end)
            .fold(0.0f64, f64::max);
        let latency = compute_end.max(evk_stream_seconds);
        phases.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        Self {
            phases,
            latency,
            evk_stream_seconds,
        }
    }

    /// Busy time of one functional-unit class across the whole schedule.
    pub fn busy_seconds(&self, unit: FunctionalUnit) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.unit == unit)
            .map(Phase::duration)
            .sum()
    }

    /// Utilization of a functional unit relative to the op latency.
    pub fn utilization(&self, unit: FunctionalUnit) -> f64 {
        if self.latency == 0.0 {
            0.0
        } else {
            (self.busy_seconds(unit) / self.latency).min(1.0)
        }
    }

    /// Whether the operation is memory bound (the evk stream is the critical
    /// path, the §3.3 design target).
    pub fn is_memory_bound(&self) -> bool {
        self.evk_stream_seconds >= self.latency * 0.999
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_level_hmult_is_memory_bound_on_the_default_design() {
        let ins = CkksInstance::ins1();
        let sched =
            KeySwitchSchedule::build(&BtsConfig::bts_default(), &ins, ins.max_level(), true);
        assert!(sched.is_memory_bound());
        // ~117 µs evk stream for INS-1 at the top level.
        assert!(
            (sched.latency - 117.4e-6).abs() < 3e-6,
            "latency = {}",
            sched.latency
        );
        // NTTU utilization in the Fig. 8 ballpark.
        let u = sched.utilization(FunctionalUnit::Nttu);
        assert!(u > 0.5 && u < 0.95, "NTTU utilization = {u}");
    }

    #[test]
    fn phases_are_well_formed_and_cover_the_dataflow() {
        let ins = CkksInstance::ins2();
        let sched = KeySwitchSchedule::build(&BtsConfig::bts_default(), &ins, 30, true);
        assert!(sched
            .phases
            .iter()
            .all(|p| p.end >= p.start && p.start >= 0.0));
        let names: Vec<&str> = sched.phases.iter().map(|p| p.name.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("iNTT.d2")));
        assert!(names.iter().any(|n| n.starts_with("BConv.d2")));
        assert!(names.iter().any(|n| n.starts_with("NTT.d2")));
        assert!(names.contains(&"iNTT.ax") && names.contains(&"NTT.bx"));
        assert!(names.contains(&"SSA.ax") && names.contains(&"SSA.bx"));
        assert!(names.contains(&"load evk (ax, bx)"));
    }

    #[test]
    fn disabling_overlap_lengthens_the_compute_path() {
        let ins = CkksInstance::ins1();
        let with = KeySwitchSchedule::build(&BtsConfig::bts_default(), &ins, 27, true);
        let without = KeySwitchSchedule::build(
            &BtsConfig::bts_default().with_overlap(false),
            &ins,
            27,
            true,
        );
        let compute = |s: &KeySwitchSchedule| {
            s.phases
                .iter()
                .filter(|p| p.unit != FunctionalUnit::Hbm)
                .map(|p| p.end)
                .fold(0.0f64, f64::max)
        };
        assert!(compute(&without) >= compute(&with));
    }

    #[test]
    fn hrot_skips_the_tensor_product() {
        let ins = CkksInstance::ins1();
        let mult = KeySwitchSchedule::build(&BtsConfig::bts_default(), &ins, 20, true);
        let rot = KeySwitchSchedule::build(&BtsConfig::bts_default(), &ins, 20, false);
        assert!(mult
            .phases
            .iter()
            .any(|p| p.name.contains("tensor product")));
        assert!(!rot.phases.iter().any(|p| p.name.contains("tensor product")));
        assert!(
            rot.busy_seconds(FunctionalUnit::ElementWise)
                < mult.busy_seconds(FunctionalUnit::ElementWise)
        );
    }

    #[test]
    fn doubling_bandwidth_exposes_compute() {
        // Fig. 9's 2 TB/s ablation: the evk stream halves but the latency does
        // not, because compute becomes the limiter.
        let ins = CkksInstance::ins1();
        let base = KeySwitchSchedule::build(&BtsConfig::bts_default(), &ins, ins.max_level(), true);
        let fast = KeySwitchSchedule::build(
            &BtsConfig::bts_default().with_hbm(bts_params::BandwidthModel::hbm_2tb()),
            &ins,
            ins.max_level(),
            true,
        );
        assert!(fast.latency < base.latency);
        assert!(fast.latency > base.latency / 2.0);
        assert!(!fast.is_memory_bound() || fast.latency < base.latency * 0.75);
    }

    #[test]
    fn low_level_ops_are_cheaper() {
        let ins = CkksInstance::ins3();
        let low = KeySwitchSchedule::build(&BtsConfig::bts_default(), &ins, 5, true);
        let high = KeySwitchSchedule::build(&BtsConfig::bts_default(), &ins, ins.max_level(), true);
        assert!(low.latency < high.latency);
        assert!(low.evk_stream_seconds < high.evk_stream_seconds);
    }
}
