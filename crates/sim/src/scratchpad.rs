//! Explicit model of the software-managed scratchpad (§5.3): a single
//! capacity shared by three client classes with strict allocation priority —
//! key-switching temporaries first, the streaming evaluation-key buffer
//! second, and the ciphertext cache (LRU) with whatever remains — plus the
//! chip-wide bandwidth accounting used by the Fig. 8 utilization curve.

use std::collections::{HashMap, VecDeque};

use bts_params::CkksInstance;

use crate::config::BtsConfig;
use crate::trace::CtId;

/// The allocation priority classes of §5.3/§6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationClass {
    /// Temporary data of the HE op in flight (highest priority).
    Temporary,
    /// Prefetched evaluation-key limbs being streamed from HBM.
    EvkBuffer,
    /// Software-managed ciphertext cache (lowest priority, LRU-evicted).
    CtCache,
}

/// A scratchpad with explicit per-class accounting and an LRU ciphertext
/// cache in the lowest-priority region.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    capacity: u64,
    bandwidth_bytes_per_sec: f64,
    temporary: u64,
    evk_buffer: u64,
    cache_entries: HashMap<CtId, u64>,
    cache_order: VecDeque<CtId>,
    cache_used: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Scratchpad {
    /// Creates a scratchpad with the given capacity and aggregate bandwidth.
    pub fn new(capacity: u64, bandwidth_bytes_per_sec: f64) -> Self {
        Self {
            capacity,
            bandwidth_bytes_per_sec,
            temporary: 0,
            evk_buffer: 0,
            cache_entries: HashMap::new(),
            cache_order: VecDeque::new(),
            cache_used: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The scratchpad of a BTS configuration (512 MiB, 38.4 TB/s by default).
    pub fn from_config(config: &BtsConfig) -> Self {
        Self::new(config.scratchpad_bytes, config.scratchpad_bw)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved for the given class.
    pub fn reserved(&self, class: AllocationClass) -> u64 {
        match class {
            AllocationClass::Temporary => self.temporary,
            AllocationClass::EvkBuffer => self.evk_buffer,
            AllocationClass::CtCache => self.cache_used,
        }
    }

    /// Total bytes in use across all classes.
    pub fn used(&self) -> u64 {
        self.temporary + self.evk_buffer + self.cache_used
    }

    /// Free bytes.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used())
    }

    /// Reserves space for the temporary data of the op about to execute,
    /// evicting ciphertexts if needed. Returns `false` (and reserves nothing)
    /// if even a fully evicted cache cannot make room — the op would spill to
    /// HBM, which the caller accounts separately.
    pub fn reserve_temporary(&mut self, bytes: u64) -> bool {
        self.release_temporary();
        if bytes + self.evk_buffer > self.capacity {
            return false;
        }
        self.evict_until_free(bytes);
        if self.free() < bytes {
            return false;
        }
        self.temporary = bytes;
        true
    }

    /// Releases the temporary reservation at the end of an op.
    pub fn release_temporary(&mut self) {
        self.temporary = 0;
    }

    /// Sets the size of the double-buffered evaluation-key streaming region,
    /// evicting ciphertexts to make room if necessary.
    pub fn reserve_evk_buffer(&mut self, bytes: u64) -> bool {
        self.evk_buffer = 0;
        if bytes + self.temporary > self.capacity {
            return false;
        }
        self.evict_until_free(bytes);
        if self.free() < bytes {
            return false;
        }
        self.evk_buffer = bytes;
        true
    }

    fn evict_until_free(&mut self, needed: u64) {
        while self.free() < needed {
            let Some(victim) = self.cache_order.pop_front() else {
                break;
            };
            if let Some(sz) = self.cache_entries.remove(&victim) {
                self.cache_used -= sz;
                self.evictions += 1;
            }
        }
    }

    /// Looks up a ciphertext operand in the cache region, refreshing its LRU
    /// position on a hit. Returns `true` on a hit.
    pub fn touch_ct(&mut self, id: CtId) -> bool {
        if self.cache_entries.contains_key(&id) {
            if let Some(pos) = self.cache_order.iter().position(|&x| x == id) {
                self.cache_order.remove(pos);
            }
            self.cache_order.push_back(id);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts (or refreshes) a ciphertext in the cache region, evicting older
    /// entries if needed. Ciphertexts larger than the available cache region
    /// are simply not cached.
    pub fn insert_ct(&mut self, id: CtId, bytes: u64) {
        if self.cache_entries.contains_key(&id) {
            if let Some(pos) = self.cache_order.iter().position(|&x| x == id) {
                self.cache_order.remove(pos);
            }
            self.cache_order.push_back(id);
            return;
        }
        let cache_budget = self
            .capacity
            .saturating_sub(self.temporary + self.evk_buffer);
        if bytes > cache_budget {
            return;
        }
        while self.cache_used + bytes > cache_budget {
            let Some(victim) = self.cache_order.pop_front() else {
                break;
            };
            if let Some(sz) = self.cache_entries.remove(&victim) {
                self.cache_used -= sz;
                self.evictions += 1;
            }
        }
        self.cache_entries.insert(id, bytes);
        self.cache_order.push_back(id);
        self.cache_used += bytes;
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of LRU evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Cache hit rate across all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of the aggregate scratchpad bandwidth consumed when `bytes`
    /// are moved in `seconds` (the Fig. 8 bandwidth-utilization curve).
    pub fn bandwidth_utilization(&self, bytes: u64, seconds: f64) -> f64 {
        if seconds <= 0.0 {
            return 0.0;
        }
        (bytes as f64 / seconds / self.bandwidth_bytes_per_sec).min(1.0)
    }
}

/// Convenience: the §5.3 allocation plan for one key-switching op of a given
/// instance — how much space each class gets on a BTS-sized scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationPlan {
    /// Bytes reserved for temporaries.
    pub temporary: u64,
    /// Bytes reserved for the evk streaming buffer.
    pub evk_buffer: u64,
    /// Bytes left over for the ciphertext cache.
    pub ct_cache: u64,
}

impl AllocationPlan {
    /// Builds the plan for a key-switch at `level` on `config`'s scratchpad:
    /// temporaries sized from the working polynomials of the decomposition,
    /// one evk slice double-buffered, and the remainder for ciphertexts.
    pub fn for_keyswitch(config: &BtsConfig, instance: &CkksInstance, level: usize) -> Self {
        let limbs = (instance.num_special() + level + 1) as u64;
        let temporary = (instance.dnum_at_level(level) as u64 + 2) * limbs * instance.limb_bytes();
        // One extended polynomial's worth of prefetched evk limbs; the rest of
        // the key streams through and is consumed immediately (§5.3).
        let evk_buffer = limbs * instance.limb_bytes();
        let ct_cache = config
            .scratchpad_bytes
            .saturating_sub(temporary + evk_buffer);
        Self {
            temporary,
            evk_buffer,
            ct_cache,
        }
    }

    /// Number of maximum-level ciphertexts the cache region can hold.
    pub fn resident_cts(&self, instance: &CkksInstance) -> u64 {
        self.ct_cache / instance.ct_bytes(instance.max_level()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_order_evicts_cache_first() {
        let mut sp = Scratchpad::new(100, 1e12);
        sp.insert_ct(1, 40);
        sp.insert_ct(2, 40);
        assert_eq!(sp.reserved(AllocationClass::CtCache), 80);
        // Temporary reservation pushes out the least recently used ciphertext.
        assert!(sp.reserve_temporary(50));
        assert_eq!(sp.reserved(AllocationClass::Temporary), 50);
        assert!(sp.reserved(AllocationClass::CtCache) <= 40);
        assert!(sp.evictions() >= 1);
        // The evicted ciphertext now misses; the survivor hits.
        assert!(!sp.touch_ct(1));
        assert!(sp.touch_ct(2));
    }

    #[test]
    fn oversized_reservations_are_refused() {
        let mut sp = Scratchpad::new(100, 1e12);
        assert!(!sp.reserve_temporary(150));
        assert!(sp.reserve_temporary(80));
        assert!(!sp.reserve_evk_buffer(30));
        assert!(sp.reserve_evk_buffer(20));
        assert_eq!(sp.free(), 0);
    }

    #[test]
    fn lru_order_is_respected() {
        let mut sp = Scratchpad::new(100, 1e12);
        sp.insert_ct(1, 30);
        sp.insert_ct(2, 30);
        sp.insert_ct(3, 30);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(sp.touch_ct(1));
        sp.insert_ct(4, 30);
        assert!(sp.touch_ct(1));
        assert!(!sp.touch_ct(2), "2 should have been evicted");
        assert!(sp.touch_ct(3));
        assert!(sp.touch_ct(4));
    }

    #[test]
    fn hit_rate_and_bandwidth_utilization() {
        let mut sp = Scratchpad::new(1 << 30, 38.4e12);
        sp.insert_ct(7, 1 << 20);
        assert!(sp.touch_ct(7));
        assert!(!sp.touch_ct(8));
        assert!((sp.hit_rate() - 0.5).abs() < 1e-9);
        // Moving 38.4 TB in one second saturates the port.
        assert!((sp.bandwidth_utilization(38_400_000_000_000, 1.0) - 1.0).abs() < 1e-9);
        assert!(sp.bandwidth_utilization(1 << 30, 1.0) < 0.01);
    }

    #[test]
    fn allocation_plan_matches_table4_scale() {
        // INS-1/2/3 leave progressively less room for ciphertexts at 512 MiB
        // (§6.3: INS-1 beats INS-3 at 512 MiB because of this).
        let cfg = BtsConfig::bts_default();
        let plans: Vec<AllocationPlan> = CkksInstance::evaluation_set()
            .iter()
            .map(|ins| AllocationPlan::for_keyswitch(&cfg, ins, ins.max_level()))
            .collect();
        assert!(plans[0].ct_cache > plans[1].ct_cache);
        assert!(plans[1].ct_cache > plans[2].ct_cache);
        let ins1 = CkksInstance::ins1();
        assert!(plans[0].resident_cts(&ins1) >= 3);
        // Temporary footprints land in the Table 4 ballpark (183–365 MiB).
        for (plan, reported) in plans.iter().zip([183u64, 304, 365]) {
            let total_mib = (plan.temporary + plan.evk_buffer) / (1024 * 1024);
            assert!(
                total_mib.abs_diff(reported) < 110,
                "temp+evk = {total_mib} MiB vs reported {reported} MiB"
            );
        }
    }
}
