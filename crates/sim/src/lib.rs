//! # bts-sim
//!
//! A performance, area, power and energy model of the BTS accelerator
//! (§4–§6 of the paper): 2,048 processing elements in a 64×32 grid, each with
//! an NTTU, a BConvU (ModMult + MMAU), element-wise units and a scratchpad
//! slice; two HBM2e stacks; and three dedicated NoCs.
//!
//! The simulator consumes *HE-op traces* (sequences of `HMult`, `HRot`,
//! `PMult`, … with their ciphertext levels and operand identities) produced by
//! `bts-workloads`, lowers each op onto the paper's dataflow
//! (iNTT → BConv → NTT → ⊙evk → ModDown, Fig. 3a), and accounts for
//!
//! * evaluation-key streaming from HBM (the §3.3 minimum bound),
//! * functional-unit occupancy (NTTU butterflies, BConvU MACs, element-wise),
//! * the software-managed ciphertext cache in the scratchpad (LRU, §5.3),
//! * scratchpad capacity pressure from temporary key-switching data,
//! * energy, chip area and EDAP (Table 3, Fig. 10).
//!
//! ```
//! use bts_sim::{BtsConfig, Simulator, TraceBuilder};
//! use bts_params::CkksInstance;
//!
//! let ins = CkksInstance::ins1();
//! let mut trace = TraceBuilder::new(&ins);
//! let a = trace.fresh_ct(ins.max_level());
//! let b = trace.fresh_ct(ins.max_level());
//! let c = trace.hmult(a, b);
//! let _ = trace.hrescale(c);
//! let report = Simulator::new(BtsConfig::bts_default(), ins).run(&trace.build());
//! assert!(report.total_seconds > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod cost;
mod engine;
mod f1;
mod keyswitch;
mod noc;
mod pe;
mod scratchpad;
mod timeline;
mod trace;
mod twiddle;

pub use config::{ArchPreset, BtsConfig, ConfigError};
pub use cost::{AreaPowerModel, ComponentCost, EdapPoint};
pub use engine::{OpClassStats, OpCost, OpTiming, SimReport, Simulator};
pub use f1::{F1Model, PlatformRow};
pub use keyswitch::{FunctionalUnit, KeySwitchSchedule, Phase};
pub use noc::{BruNoc, PeMemNoc, PePeNoc};
pub use pe::{KeySwitchOccupancy, ProcessingElement};
pub use scratchpad::{AllocationClass, AllocationPlan, Scratchpad};
pub use timeline::{hmult_timeline, TimelineSegment};
pub use trace::{CtId, EvictionHints, HeOp, OpTrace, TraceBuilder, TraceError, TracedOp};
pub use twiddle::TwiddleStorage;
