use bts_params::CkksInstance;

use crate::config::BtsConfig;
use crate::engine::Simulator;
use crate::trace::HeOp;

// The segment type moved into the shared telemetry crate (the scheduler's
// per-channel view and the trace exporters consume it too); re-exported here
// so existing `bts_sim::TimelineSegment` users keep compiling.
pub use bts_telemetry::TimelineSegment;

/// Reconstructs the Fig. 8 timeline of one HMult at the given level: the evk
/// limb streams on HBM, the three (i)NTT phases on the NTTUs, the two BConv
/// phases on the BConvUs and the SSA tail on the element-wise units.
///
/// The segment boundaries follow the same cost model the simulator uses, so
/// the timeline's critical path equals the simulator's HMult latency.
pub fn hmult_timeline(
    config: &BtsConfig,
    instance: &CkksInstance,
    level: usize,
) -> Vec<TimelineSegment> {
    let sim = Simulator::new(config.clone(), instance.clone());
    let cost = sim.op_cost(HeOp::HMult, level);
    let ns = 1e9;
    let evk_total = instance.evk_bytes_at_level(level) as f64 / config.hbm.bytes_per_sec() * ns;
    let ntt_total = cost.ntt_seconds * ns;
    let bconv_total = cost.bconv_seconds * ns;
    let ew_total = cost.elementwise_seconds * ns;

    // HBM streams the four evk halves back to back (ax.P, ax.Q, bx.P, bx.Q).
    let mut segments = Vec::new();
    let k = instance.num_special() as f64;
    let l1 = (level + 1) as f64;
    let p_frac = k / (k + l1);
    let mut t = 0.0;
    for (label, frac) in [
        ("load evk.ax.P", p_frac / 2.0),
        ("load evk.ax.Q", (1.0 - p_frac) / 2.0),
        ("load evk.bx.P", p_frac / 2.0),
        ("load evk.bx.Q", (1.0 - p_frac) / 2.0),
    ] {
        let end = t + evk_total * frac;
        segments.push(TimelineSegment::new("HBM", label, t, end));
        t = end;
    }

    // NTTU phases: iNTT.d2 → NTT.d2 (ModUp) → iNTT.ax/bx → NTT.ax/bx (ModDown).
    let intt_d2 = ntt_total * (l1 / (2.0 * l1 + 2.0 * k + l1 + k));
    let ntt_d2 = ntt_total * ((l1 + k) / (2.0 * l1 + 2.0 * k + l1 + k));
    let moddown_each = (ntt_total - intt_d2 - ntt_d2) / 2.0;
    let mut t = 0.0;
    for (label, dur) in [
        ("iNTT.d2", intt_d2),
        ("NTT.d2", ntt_d2),
        ("iNTT.ax + NTT.ax", moddown_each),
        ("iNTT.bx + NTT.bx", moddown_each),
    ] {
        segments.push(TimelineSegment::new("NTTU", label, t, t + dur));
        t += dur;
    }

    // BConvU phases, overlapped with the iNTT that feeds them when enabled.
    let bconv_start = if config.overlap_bconv_intt {
        intt_d2 * 0.25
    } else {
        intt_d2
    };
    let bconv_up_end = bconv_start + bconv_total * (l1 / (l1 + 2.0 * k)).min(0.6);
    segments.push(TimelineSegment::new(
        "BConvU",
        "BConv.d2",
        bconv_start,
        bconv_up_end,
    ));
    let down_start = bconv_up_end.max(intt_d2 + ntt_d2);
    segments.push(TimelineSegment::new(
        "BConvU",
        "BConv.ax + BConv.bx",
        down_start,
        down_start + bconv_total * (2.0 * k / (l1 + 2.0 * k)).max(0.4),
    ));

    // Element-wise tail: evk products and SSA.
    let ew_start = intt_d2 + ntt_d2 * 0.5;
    segments.push(TimelineSegment::new(
        "ModMult/ModAdd",
        "d2 ⊗ evk + SSA",
        ew_start,
        ew_start + ew_total,
    ));
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_critical_path_matches_evk_stream() {
        let cfg = BtsConfig::bts_default();
        let ins = CkksInstance::ins1();
        let segs = hmult_timeline(&cfg, &ins, ins.max_level());
        let hbm_end = segs
            .iter()
            .filter(|s| s.unit == "HBM")
            .map(|s| s.end_ns)
            .fold(0.0f64, f64::max);
        // INS-1 top-level evk stream is ~117 µs.
        assert!((hbm_end - 117_440.5).abs() < 2_000.0, "hbm_end = {hbm_end}");
        // Compute finishes before the evk stream (memory bound).
        let compute_end = segs
            .iter()
            .filter(|s| s.unit != "HBM")
            .map(|s| s.end_ns)
            .fold(0.0f64, f64::max);
        assert!(compute_end < hbm_end);
    }

    #[test]
    fn segments_are_well_formed() {
        let cfg = BtsConfig::bts_default();
        let ins = CkksInstance::ins2();
        for level in [5, 20, ins.max_level()] {
            for s in hmult_timeline(&cfg, &ins, level) {
                assert!(s.end_ns >= s.start_ns, "{s:?}");
                assert!(s.start_ns >= 0.0);
            }
        }
    }

    #[test]
    fn overlap_shifts_bconv_earlier() {
        let ins = CkksInstance::ins1();
        let with = hmult_timeline(&BtsConfig::bts_default(), &ins, 27);
        let without = hmult_timeline(&BtsConfig::bts_default().with_overlap(false), &ins, 27);
        let start_of = |segs: &[TimelineSegment]| {
            segs.iter()
                .find(|s| s.label == "BConv.d2")
                .map(|s| s.start_ns)
                .unwrap()
        };
        assert!(start_of(&with) < start_of(&without));
    }
}
