//! A first-order model of the F1 accelerator [75] and its area-scaled variant
//! F1+, the ASIC baselines BTS is compared against in Table 1, Fig. 6 and
//! Table 5.
//!
//! F1 targets small parameter sets (N = 2^14) whose evaluation keys fit
//! on-chip, exploits residue-polynomial-level parallelism (rPLP), and only
//! supports *single-slot* bootstrapping; its per-op latency is excellent but
//! its bootstrapping throughput per slot collapses because each bootstrap
//! refreshes one slot instead of N/2 (§7, Table 1 footnote). The model here
//! reproduces that shape: it is calibrated to the execution times F1 reports
//! and exposes the same `T_mult,a/slot` metric the paper uses, so the Fig. 6
//! comparison can be regenerated from a model rather than a constant.

use bts_params::{CkksInstance, InstanceBuilder, L_BOOT};

/// Model of an F1-class accelerator (rPLP, on-chip evaluation keys,
/// single-slot bootstrapping).
#[derive(Debug, Clone, PartialEq)]
pub struct F1Model {
    /// The (small) CKKS instance the accelerator targets.
    instance: CkksInstance,
    /// Latency of one HMult at the maximum level, in seconds.
    hmult_seconds: f64,
    /// Latency of one full (single-slot) bootstrapping, in seconds.
    bootstrap_seconds: f64,
    /// Number of slots refreshed by one bootstrapping invocation.
    refreshed_slots: usize,
    /// Performance scaling factor relative to baseline F1 (1.0 for F1; >1 for
    /// the area-normalized F1+ projection).
    speed_scale: f64,
}

impl F1Model {
    /// The baseline F1 configuration: N = 2^14, 16 levels, evks on chip,
    /// single-slot bootstrapping. The per-op latencies are calibrated so that
    /// the model reproduces the comparison points the paper uses: an
    /// amortized `T_mult,a/slot` of ≈ 255 µs (≈ 4 K FHE mult/s in Table 1,
    /// 2.5× slower than Lattigo per slot) and a ≈ 1 s HELR estimate
    /// (Table 5).
    pub fn f1() -> Self {
        let instance = InstanceBuilder::new(14, 16, 16)
            .name("F1 (N=2^14)")
            .prime_bits(60, 32, 32)
            .build();
        Self {
            instance,
            hmult_seconds: 25e-6,
            bootstrap_seconds: 230e-6,
            refreshed_slots: 1,
            speed_scale: 1.0,
        }
    }

    /// The F1+ projection of §6.2: F1 optimistically scaled to the same 7 nm
    /// area as BTS, which the paper treats as a ~7× higher-throughput F1.
    pub fn f1_plus() -> Self {
        Self {
            speed_scale: 6.9,
            ..Self::f1()
        }
    }

    /// The parameter set this accelerator targets.
    pub fn instance(&self) -> &CkksInstance {
        &self.instance
    }

    /// Latency of one HMult in seconds (after the speed scaling).
    pub fn hmult_seconds(&self) -> f64 {
        self.hmult_seconds / self.speed_scale
    }

    /// Latency of one bootstrapping invocation in seconds.
    pub fn bootstrap_seconds(&self) -> f64 {
        self.bootstrap_seconds / self.speed_scale
    }

    /// Slots refreshed per bootstrapping invocation (1: single-slot only).
    pub fn refreshed_slots(&self) -> usize {
        self.refreshed_slots
    }

    /// Whether the accelerator can bootstrap fully packed ciphertexts.
    pub fn supports_packed_bootstrapping(&self) -> bool {
        self.refreshed_slots >= self.instance.slots()
    }

    /// Amortized multiplication time per slot (Eq. 8) for this accelerator.
    ///
    /// F1's small level budget leaves only a handful of usable levels after
    /// bootstrapping, and each bootstrap refreshes a single slot, so the
    /// amortization over slots that benefits BTS does not apply: the bootstrap
    /// cost is divided by `refreshed_slots`, not by N/2.
    pub fn amortized_mult_per_slot(&self) -> f64 {
        let usable = self.instance.max_level().saturating_sub(L_BOOT).max(1) as f64;
        let mults: f64 = (1..=usable as usize).map(|_| self.hmult_seconds()).sum();
        let total = self.bootstrap_seconds() + mults;
        // Single-slot bootstrapping refreshes `refreshed_slots` data elements,
        // so the per-slot amortized cost divides by that count.
        total / usable / self.refreshed_slots as f64
    }

    /// Multiplication throughput in HMult/s ignoring bootstrapping (the
    /// headline number prior works quote).
    pub fn mult_throughput(&self) -> f64 {
        1.0 / self.hmult_seconds()
    }

    /// End-to-end time of a logistic-regression-style workload with
    /// `keyswitch_ops` key-switching operations and `bootstraps` bootstrap
    /// invocations (used for the Table 5 comparison).
    pub fn workload_seconds(&self, keyswitch_ops: usize, bootstraps: usize) -> f64 {
        keyswitch_ops as f64 * self.hmult_seconds() + bootstraps as f64 * self.bootstrap_seconds()
    }
}

/// Summary row of the Table 1 platform comparison for any accelerator model.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformRow {
    /// Platform name.
    pub name: String,
    /// log2 of the ciphertext length N.
    pub log_n: u32,
    /// Whether bootstrapping of packed ciphertexts is supported.
    pub bootstrappable: bool,
    /// Slots refreshed per bootstrap.
    pub refreshed_slots: usize,
    /// FHE multiplication throughput in mult/s, amortized over bootstrapping
    /// and slots (the rightmost Table 1 column, reciprocal of T_mult,a/slot).
    pub fhe_mult_throughput: f64,
}

impl F1Model {
    /// The Table 1 row for this model.
    pub fn platform_row(&self, name: &str) -> PlatformRow {
        PlatformRow {
            name: name.to_string(),
            log_n: self.instance.log_n(),
            bootstrappable: self.supports_packed_bootstrapping(),
            refreshed_slots: self.refreshed_slots,
            fhe_mult_throughput: 1.0 / self.amortized_mult_per_slot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_has_high_raw_throughput_but_poor_amortized_throughput() {
        // Table 1: F1 reports ~4K mult/s of FHE multiplication throughput
        // (single-slot bootstrapping), orders of magnitude below BTS' ~20M.
        let f1 = F1Model::f1();
        assert!(f1.mult_throughput() > 10_000.0);
        let amortized_throughput = 1.0 / f1.amortized_mult_per_slot();
        assert!(
            amortized_throughput < 10_000.0,
            "amortized throughput = {amortized_throughput}"
        );
        assert!(!f1.supports_packed_bootstrapping());
    }

    #[test]
    fn f1_plus_is_faster_but_keeps_the_same_structure() {
        let f1 = F1Model::f1();
        let plus = F1Model::f1_plus();
        assert!(plus.hmult_seconds() < f1.hmult_seconds());
        assert!(plus.bootstrap_seconds() < f1.bootstrap_seconds());
        assert_eq!(plus.refreshed_slots(), 1);
        assert!(plus.amortized_mult_per_slot() < f1.amortized_mult_per_slot());
    }

    #[test]
    fn f1_amortized_time_is_slower_than_a_cpu_per_slot() {
        // Fig. 6: "F1 is even 2.5× slower than Lattigo" on T_mult,a/slot
        // because it only refreshes one slot per bootstrap. Lattigo's reported
        // value is ~102 µs; F1's modelled value must be of that order or worse.
        let f1 = F1Model::f1();
        assert!(
            f1.amortized_mult_per_slot() > 50e-6,
            "T_mult,a/slot = {}",
            f1.amortized_mult_per_slot()
        );
    }

    #[test]
    fn table1_row_reports_the_limitation() {
        let row = F1Model::f1().platform_row("F1");
        assert_eq!(row.log_n, 14);
        assert!(!row.bootstrappable);
        assert_eq!(row.refreshed_slots, 1);
        let bts_like_throughput = 2.0e7;
        assert!(row.fhe_mult_throughput < bts_like_throughput / 1000.0);
    }

    #[test]
    fn workload_time_scales_with_bootstrap_count() {
        let f1 = F1Model::f1();
        let light = f1.workload_seconds(1000, 0);
        let heavy = f1.workload_seconds(1000, 196);
        assert!(heavy > light);
        // The same workload on F1+ runs ~7× faster.
        let plus = F1Model::f1_plus().workload_seconds(1000, 196);
        assert!(plus < heavy / 5.0);
        // Table 5: F1's estimated HELR (1024 images, 196 single-slot
        // bootstraps, tens of thousands of key-switching ops across the four
        // iterations) lands near one second.
        let helr_estimate = f1.workload_seconds(38_000, 196);
        assert!(
            (0.4..2.0).contains(&helr_estimate),
            "HELR on F1 = {helr_estimate} s"
        );
    }
}
