//! Storage model for (i)NTT twiddle factors with on-the-fly twiddling (OT,
//! §5.1): instead of keeping the full `N`-entry twiddle table of every prime
//! modulus on chip, BTS keeps a small lower-digit table in each PE and a
//! higher-digit table in the broadcast unit, and multiplies the two entries on
//! the fly to reconstruct any twiddle factor.
//!
//! The model answers the sizing questions of §5.1: how many bytes the full
//! tables would take, how much OT saves (the `2/m` factor), how the storage is
//! split between the PEs and the BrU, and which decomposition parameter `m`
//! minimizes the per-PE footprint.

use bts_params::{CkksInstance, WORD_BYTES};

/// Twiddle-factor storage plan for one CKKS instance on a BTS-style chip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwiddleStorage {
    degree: usize,
    /// Number of prime moduli whose twiddle tables must be available
    /// (ciphertext primes + special primes).
    prime_count: usize,
    /// OT decomposition parameter `m`: lower-digit tables hold `m` entries,
    /// higher-digit tables hold `(N-1)/m` entries.
    m: usize,
    pe_count: usize,
}

impl TwiddleStorage {
    /// Creates a storage plan.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or larger than the degree.
    pub fn new(degree: usize, prime_count: usize, m: usize, pe_count: usize) -> Self {
        assert!(m > 0 && m <= degree, "invalid OT decomposition parameter");
        Self {
            degree,
            prime_count,
            m,
            pe_count,
        }
    }

    /// Plan for a CKKS instance on the default 2,048-PE BTS chip with the
    /// paper's decomposition (`m = 256`).
    pub fn for_instance(instance: &CkksInstance) -> Self {
        Self::new(
            instance.n(),
            instance.max_level() + 1 + instance.num_special(),
            256,
            2048,
        )
    }

    /// The OT decomposition parameter `m`.
    pub fn decomposition(&self) -> usize {
        self.m
    }

    /// Bytes of twiddle storage *without* OT: `N` words per prime modulus
    /// (the "dozens of MBs" of §5.1).
    pub fn full_table_bytes(&self) -> u64 {
        self.degree as u64 * self.prime_count as u64 * WORD_BYTES
    }

    /// Entries of the per-prime lower-digit table (stored distributed across
    /// the PEs).
    pub fn lower_digit_entries(&self) -> u64 {
        self.m as u64
    }

    /// Entries of the per-prime higher-digit table (stored in the BrU and
    /// broadcast once per (i)NTT epoch).
    pub fn higher_digit_entries(&self) -> u64 {
        ((self.degree - 1) / self.m) as u64
    }

    /// Total bytes with OT across all prime moduli (both tables).
    pub fn ot_table_bytes(&self) -> u64 {
        (self.lower_digit_entries() + self.higher_digit_entries())
            * self.prime_count as u64
            * WORD_BYTES
    }

    /// Storage reduction factor of OT relative to the full tables
    /// (≈ `m/2 + N/(2m)` entries versus `N`, i.e. roughly `2/m` when
    /// `m ≈ √N`… the paper quotes the `2/m` asymptotic).
    pub fn reduction_factor(&self) -> f64 {
        self.full_table_bytes() as f64 / self.ot_table_bytes() as f64
    }

    /// Bytes of lower-digit table each PE stores for all prime moduli. The
    /// lower-digit entries are distributed across the PEs (each PE holds the
    /// entries its own butterflies consume), so the per-PE share is the total
    /// divided by the PE count, with a floor of one entry per prime.
    pub fn per_pe_lower_bytes(&self) -> u64 {
        let per_prime = (self.lower_digit_entries())
            .div_ceil(self.pe_count as u64)
            .max(1);
        per_prime * self.prime_count as u64 * WORD_BYTES
    }

    /// Bytes of higher-digit tables the BrU stores for all prime moduli.
    pub fn bru_higher_bytes(&self) -> u64 {
        self.higher_digit_entries() * self.prime_count as u64 * WORD_BYTES
    }

    /// Words the BrU must broadcast per (i)NTT epoch (the higher-digit table of
    /// the prime modulus being transformed).
    pub fn broadcast_words_per_epoch(&self) -> u64 {
        self.higher_digit_entries()
    }

    /// The decomposition parameter that minimizes total OT storage
    /// (`m ≈ √N`, balancing the two tables).
    pub fn optimal_decomposition(degree: usize) -> usize {
        let mut best_m = 1usize;
        let mut best = u64::MAX;
        let mut m = 1usize;
        while m <= degree {
            let total = m as u64 + ((degree - 1) / m) as u64;
            if total < best {
                best = total;
                best_m = m;
            }
            m <<= 1;
        }
        best_m
    }

    /// Returns a copy of the plan with a different decomposition parameter.
    pub fn with_decomposition(mut self, m: usize) -> Self {
        assert!(
            m > 0 && m <= self.degree,
            "invalid OT decomposition parameter"
        );
        self.m = m;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bts_params::CkksInstance;

    #[test]
    fn full_tables_are_dozens_of_megabytes() {
        // §5.1: "the sizes of the twiddle factors for (i)NTT on a ciphertext
        // reach dozens of MBs for our target CKKS instances."
        let storage = TwiddleStorage::for_instance(&CkksInstance::ins1());
        let mib = storage.full_table_bytes() / (1024 * 1024);
        assert!((20..120).contains(&mib), "full tables = {mib} MiB");
    }

    #[test]
    fn ot_reduces_storage_by_orders_of_magnitude() {
        let storage = TwiddleStorage::for_instance(&CkksInstance::ins1());
        assert!(storage.reduction_factor() > 100.0);
        assert!(storage.ot_table_bytes() < storage.full_table_bytes() / 100);
    }

    #[test]
    fn optimal_decomposition_is_near_sqrt_n() {
        for log_n in [14u32, 16, 17] {
            let n = 1usize << log_n;
            let m = TwiddleStorage::optimal_decomposition(n);
            let sqrt_n = (n as f64).sqrt();
            assert!(
                (m as f64) >= sqrt_n / 2.0 && (m as f64) <= sqrt_n * 2.0,
                "m = {m} for N = {n}"
            );
        }
    }

    #[test]
    fn storage_split_between_pes_and_bru() {
        let storage = TwiddleStorage::for_instance(&CkksInstance::ins2());
        // Per-PE lower-digit share stays tiny (well under the per-PE 256 KiB
        // scratchpad slice); the BrU share is also small.
        assert!(storage.per_pe_lower_bytes() < 16 * 1024);
        assert!(storage.bru_higher_bytes() < 1024 * 1024);
        // Broadcast volume per epoch is a few hundred words.
        assert!(storage.broadcast_words_per_epoch() <= 1024);
    }

    #[test]
    fn reduction_factor_improves_until_the_optimum() {
        let n = 1 << 17;
        let base = TwiddleStorage::new(n, 56, 4, 2048);
        let better = base.clone().with_decomposition(64);
        let best = base
            .clone()
            .with_decomposition(TwiddleStorage::optimal_decomposition(n));
        assert!(better.reduction_factor() > base.reduction_factor());
        assert!(best.reduction_factor() >= better.reduction_factor());
    }

    #[test]
    #[should_panic(expected = "invalid OT decomposition")]
    fn rejects_zero_decomposition() {
        let _ = TwiddleStorage::new(1 << 10, 10, 0, 64);
    }
}
