use bts_params::CkksInstance;

/// Identifier of a ciphertext flowing through a trace; used by the simulator's
/// software-managed cache model to track on-chip residency.
pub type CtId = u64;

/// A primitive homomorphic operation, at the granularity the paper's
/// evaluation uses (§2.3). Complex workloads (bootstrapping, HELR, ResNet-20,
/// sorting) are expressed as sequences of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HeOp {
    /// Ciphertext–ciphertext multiplication (tensor product + key-switching).
    HMult,
    /// Slot rotation (automorphism + key-switching).
    HRot,
    /// Complex conjugation (automorphism + key-switching).
    Conjugate,
    /// Ciphertext–plaintext multiplication.
    PMult,
    /// Ciphertext–plaintext addition.
    PAdd,
    /// Ciphertext–ciphertext addition.
    HAdd,
    /// Rescaling (drop the last prime).
    HRescale,
    /// Ciphertext–scalar multiplication.
    CMult,
    /// Ciphertext–scalar addition.
    CAdd,
    /// Modulus raise at the start of bootstrapping (no key-switching).
    ModRaise,
}

impl HeOp {
    /// Whether this op performs a key-switching (and therefore streams an
    /// evaluation key from off-chip memory).
    pub fn is_key_switching(&self) -> bool {
        matches!(self, HeOp::HMult | HeOp::HRot | HeOp::Conjugate)
    }
}

/// One scheduled operation in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracedOp {
    /// The operation kind.
    pub op: HeOp,
    /// Ciphertext level at which the op executes.
    pub level: usize,
    /// Input ciphertext identities (for cache modelling).
    pub inputs: Vec<CtId>,
    /// Output ciphertext identity, if the op produces a new ciphertext.
    pub output: Option<CtId>,
    /// Whether this op belongs to a bootstrapping region (for the Fig. 7b
    /// bootstrap-fraction breakdown).
    pub in_bootstrap: bool,
}

/// A complete HE-op trace plus the parameter set it was generated for.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTrace {
    /// The CKKS instance this trace assumes.
    pub instance: CkksInstance,
    /// The operations, in program order.
    pub ops: Vec<TracedOp>,
    /// Number of distinct rotation keys the trace requires.
    pub rotation_keys: usize,
    /// Ciphertext ids that enter the trace from outside (fresh ciphertexts
    /// arriving from the host); every other id must be produced by an op.
    pub inputs: Vec<CtId>,
    /// Level of each trace input, parallel to `inputs`. [`TraceBuilder`] keeps
    /// the two vectors in sync; [`OpTrace::validate`] checks the levels
    /// against the instance budget just like op levels.
    pub input_levels: Vec<usize>,
}

/// A structural defect in an [`OpTrace`] found by [`OpTrace::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An op consumes a ciphertext id that is neither a declared trace input
    /// nor the output of an earlier op.
    UndefinedInput {
        /// Index of the offending op in program order.
        op_index: usize,
        /// The undefined ciphertext id.
        id: CtId,
    },
    /// An op's level exceeds the instance's level budget.
    LevelOutOfRange {
        /// Index of the offending op in program order.
        op_index: usize,
        /// The out-of-range level.
        level: usize,
        /// The instance's maximum level L.
        max_level: usize,
    },
    /// An op's output id collides with an already-defined ciphertext (a
    /// trace input or an earlier op's output), which would make the cache
    /// model treat two unrelated ciphertexts as one resident entry.
    DuplicateOutput {
        /// Index of the offending op in program order.
        op_index: usize,
        /// The reused ciphertext id.
        id: CtId,
    },
    /// A trace input's recorded level exceeds the instance's level budget.
    InputLevelOutOfRange {
        /// Index of the offending entry in [`OpTrace::inputs`].
        input_index: usize,
        /// The out-of-range level.
        level: usize,
        /// The instance's maximum level L.
        max_level: usize,
    },
    /// Eviction hints were built for a trace of a different length, so their
    /// per-op liveness information cannot be trusted for this trace.
    HintArityMismatch {
        /// Number of ops the hints cover.
        hint_ops: usize,
        /// Number of ops in the trace.
        trace_ops: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::UndefinedInput { op_index, id } => write!(
                f,
                "op #{op_index} consumes ciphertext id {id} that is neither a trace input nor a prior op's output"
            ),
            TraceError::LevelOutOfRange {
                op_index,
                level,
                max_level,
            } => write!(
                f,
                "op #{op_index} executes at level {level} beyond the instance budget L = {max_level}"
            ),
            TraceError::DuplicateOutput { op_index, id } => write!(
                f,
                "op #{op_index} redefines ciphertext id {id}, aliasing an existing ciphertext"
            ),
            TraceError::InputLevelOutOfRange {
                input_index,
                level,
                max_level,
            } => write!(
                f,
                "trace input #{input_index} enters at level {level} beyond the instance budget L = {max_level}"
            ),
            TraceError::HintArityMismatch {
                hint_ops,
                trace_ops,
            } => write!(
                f,
                "eviction hints cover {hint_ops} ops but the trace has {trace_ops}; rebuild them with EvictionHints::from_trace"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

impl OpTrace {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of key-switching operations (HMult/HRot/Conjugate).
    pub fn key_switch_count(&self) -> usize {
        self.ops.iter().filter(|o| o.op.is_key_switching()).count()
    }

    /// Count of operations of a given kind.
    pub fn count(&self, op: HeOp) -> usize {
        self.ops.iter().filter(|o| o.op == op).count()
    }

    /// Concatenates another trace after this one. The other trace's
    /// ciphertext ids are shifted above this trace's id range: independent
    /// [`TraceBuilder`]s both number ids from 0, so splicing them verbatim
    /// would alias unrelated ciphertexts and corrupt the cache model's
    /// residency accounting (phantom hits, understated HBM traffic).
    ///
    /// `rotation_keys` stores only a count, not the rotation amounts, so the
    /// merged value (the max of the two counts) is a *lower bound*: traces
    /// with disjoint rotation sets need up to the sum.
    pub fn extend(&mut self, other: &OpTrace) {
        let offset = self.next_free_id();
        self.ops.extend(other.ops.iter().map(|op| {
            let mut op = op.clone();
            for id in &mut op.inputs {
                *id += offset;
            }
            if let Some(out) = &mut op.output {
                *out += offset;
            }
            op
        }));
        self.rotation_keys = self.rotation_keys.max(other.rotation_keys);
        self.inputs
            .extend(other.inputs.iter().map(|id| id + offset));
        self.input_levels.extend(other.input_levels.iter().copied());
    }

    /// The smallest ciphertext id not used by this trace.
    fn next_free_id(&self) -> CtId {
        let op_ids = self
            .ops
            .iter()
            .flat_map(|op| op.inputs.iter().copied().chain(op.output));
        self.inputs
            .iter()
            .copied()
            .chain(op_ids)
            .max()
            .map_or(0, |max| max + 1)
    }

    /// Checks structural well-formedness: every op input is either a declared
    /// trace input or the output of an earlier op, and every op's level lies
    /// within the instance's budget. The simulator validates traces on entry,
    /// so a hand-rolled trace with dangling ids fails fast instead of
    /// corrupting the cache model's residency accounting.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] found, in program order.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut defined: std::collections::HashSet<CtId> = self.inputs.iter().copied().collect();
        let max_level = self.instance.max_level();
        for (input_index, &level) in self.input_levels.iter().enumerate() {
            if level > max_level {
                return Err(TraceError::InputLevelOutOfRange {
                    input_index,
                    level,
                    max_level,
                });
            }
        }
        for (op_index, op) in self.ops.iter().enumerate() {
            if op.level > max_level {
                return Err(TraceError::LevelOutOfRange {
                    op_index,
                    level: op.level,
                    max_level,
                });
            }
            for &id in &op.inputs {
                if !defined.contains(&id) {
                    return Err(TraceError::UndefinedInput { op_index, id });
                }
            }
            if let Some(out) = op.output {
                if !defined.insert(out) {
                    return Err(TraceError::DuplicateOutput { op_index, id: out });
                }
            }
        }
        Ok(())
    }
}

/// Builds [`OpTrace`]s with automatic ciphertext-id management.
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    instance: CkksInstance,
    ops: Vec<TracedOp>,
    next_id: CtId,
    rotation_keys: std::collections::HashSet<i64>,
    in_bootstrap: bool,
    inputs: Vec<CtId>,
    input_levels: Vec<usize>,
}

impl TraceBuilder {
    /// Starts a new trace for an instance.
    pub fn new(instance: &CkksInstance) -> Self {
        Self {
            instance: instance.clone(),
            ops: Vec::new(),
            next_id: 0,
            rotation_keys: std::collections::HashSet::new(),
            in_bootstrap: false,
            inputs: Vec::new(),
            input_levels: Vec::new(),
        }
    }

    /// The instance this trace targets.
    pub fn instance(&self) -> &CkksInstance {
        &self.instance
    }

    /// Allocates a fresh ciphertext id at the given level (e.g. a ciphertext
    /// arriving from the host); no op is recorded, but the level is kept so
    /// [`OpTrace::validate`] can check trace inputs against the budget.
    pub fn fresh_ct(&mut self, level: usize) -> CtId {
        let id = self.next_id;
        self.next_id += 1;
        self.inputs.push(id);
        self.input_levels.push(level);
        id
    }

    /// Marks subsequent ops as belonging (or not) to a bootstrapping region.
    pub fn set_bootstrap_region(&mut self, on: bool) {
        self.in_bootstrap = on;
    }

    fn push(&mut self, op: HeOp, level: usize, inputs: Vec<CtId>, has_output: bool) -> CtId {
        let output = if has_output {
            let id = self.next_id;
            self.next_id += 1;
            Some(id)
        } else {
            None
        };
        self.ops.push(TracedOp {
            op,
            level,
            inputs,
            output,
            in_bootstrap: self.in_bootstrap,
        });
        output.unwrap_or(u64::MAX)
    }

    /// Records an HMult of two ciphertexts at level `a`/`b`'s current level.
    pub fn hmult_at(&mut self, a: CtId, b: CtId, level: usize) -> CtId {
        self.push(HeOp::HMult, level, vec![a, b], true)
    }

    /// Records an HMult at the instance's maximum level.
    pub fn hmult(&mut self, a: CtId, b: CtId) -> CtId {
        self.hmult_at(a, b, self.instance.max_level())
    }

    /// Records an HRot; `rotation` is tracked only to count distinct keys.
    pub fn hrot(&mut self, a: CtId, rotation: i64, level: usize) -> CtId {
        if rotation != 0 {
            self.rotation_keys.insert(rotation);
        }
        self.push(HeOp::HRot, level, vec![a], true)
    }

    /// Records a conjugation.
    pub fn conjugate(&mut self, a: CtId, level: usize) -> CtId {
        self.push(HeOp::Conjugate, level, vec![a], true)
    }

    /// Records a plaintext multiplication.
    pub fn pmult(&mut self, a: CtId, level: usize) -> CtId {
        self.push(HeOp::PMult, level, vec![a], true)
    }

    /// Records a plaintext addition.
    pub fn padd(&mut self, a: CtId, level: usize) -> CtId {
        self.push(HeOp::PAdd, level, vec![a], true)
    }

    /// Records a ciphertext addition.
    pub fn hadd(&mut self, a: CtId, b: CtId, level: usize) -> CtId {
        self.push(HeOp::HAdd, level, vec![a, b], true)
    }

    /// Records a rescale at the level of its input (consumes one level).
    pub fn hrescale(&mut self, a: CtId) -> CtId {
        self.hrescale_at(a, self.instance.max_level())
    }

    /// Records a rescale at an explicit level.
    pub fn hrescale_at(&mut self, a: CtId, level: usize) -> CtId {
        self.push(HeOp::HRescale, level, vec![a], true)
    }

    /// Records a scalar multiplication.
    pub fn cmult(&mut self, a: CtId, level: usize) -> CtId {
        self.push(HeOp::CMult, level, vec![a], true)
    }

    /// Records a scalar addition.
    pub fn cadd(&mut self, a: CtId, level: usize) -> CtId {
        self.push(HeOp::CAdd, level, vec![a], true)
    }

    /// Records a modulus raise (start of bootstrapping).
    pub fn mod_raise(&mut self, a: CtId, to_level: usize) -> CtId {
        self.push(HeOp::ModRaise, to_level, vec![a], true)
    }

    /// Finalizes the trace.
    pub fn build(self) -> OpTrace {
        OpTrace {
            instance: self.instance,
            ops: self.ops,
            rotation_keys: self.rotation_keys.len(),
            inputs: self.inputs,
            input_levels: self.input_levels,
        }
    }
}

/// Dead-ciphertext eviction hints derived from a trace's last-use analysis:
/// for every op index, the ciphertext ids whose final access happens at that
/// op. The scratchpad cache uses them ([`crate::Simulator::try_run_with_hints`])
/// to drop dead ciphertexts immediately instead of waiting for LRU pressure,
/// and the scheduler reuses the same liveness information.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvictionHints {
    /// `evict_after[i]` lists the ids that die at op `i`: ids consumed for the
    /// last time by op `i`, plus op `i`'s own output if nothing ever reads it
    /// (a workload output, written back to the host rather than kept hot).
    pub evict_after: Vec<Vec<CtId>>,
}

impl EvictionHints {
    /// Computes the hints for a trace with one backward liveness sweep.
    pub fn from_trace(trace: &OpTrace) -> Self {
        let mut last_use: std::collections::HashMap<CtId, usize> = std::collections::HashMap::new();
        for (i, op) in trace.ops.iter().enumerate() {
            for &id in &op.inputs {
                last_use.insert(id, i);
            }
        }
        let mut evict_after = vec![Vec::new(); trace.ops.len()];
        for (&id, &i) in &last_use {
            evict_after[i].push(id);
        }
        for (i, op) in trace.ops.iter().enumerate() {
            if let Some(out) = op.output {
                if !last_use.contains_key(&out) {
                    evict_after[i].push(out);
                }
            }
        }
        // HashMap iteration order is arbitrary; sort so the hints (and any
        // accounting that folds over them) are deterministic.
        for ids in &mut evict_after {
            ids.sort_unstable();
        }
        Self { evict_after }
    }

    /// Number of ops the hints were computed for.
    pub fn len(&self) -> usize {
        self.evict_after.len()
    }

    /// Whether the hints cover an empty trace.
    pub fn is_empty(&self) -> bool {
        self.evict_after.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_ids_ops_and_keys() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        let y = b.fresh_ct(27);
        let z = b.hmult(x, y);
        let z = b.hrescale_at(z, 27);
        let _ = b.hrot(z, 5, 26);
        let _ = b.hrot(z, 5, 26);
        let _ = b.hrot(z, -3, 26);
        let t = b.build();
        assert_eq!(t.len(), 5);
        assert_eq!(t.key_switch_count(), 4);
        assert_eq!(t.count(HeOp::HRescale), 1);
        assert_eq!(t.rotation_keys, 2, "duplicate rotations share a key");
    }

    #[test]
    fn bootstrap_region_marking() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(0);
        b.set_bootstrap_region(true);
        let y = b.mod_raise(x, 27);
        let _ = b.hrot(y, 1, 27);
        b.set_bootstrap_region(false);
        let _ = b.hmult_at(y, y, 20);
        let t = b.build();
        assert!(t.ops[0].in_bootstrap && t.ops[1].in_bootstrap);
        assert!(!t.ops[2].in_bootstrap);
    }

    #[test]
    fn traces_can_be_concatenated() {
        let ins = CkksInstance::ins1();
        let mut a = TraceBuilder::new(&ins);
        let x = a.fresh_ct(27);
        a.hmult(x, x);
        let mut t1 = a.build();
        let mut b = TraceBuilder::new(&ins);
        let y = b.fresh_ct(27);
        b.hrot(y, 1, 27);
        let t2 = b.build();
        t1.extend(&t2);
        assert_eq!(t1.len(), 2);
        assert_eq!(t1.rotation_keys, 1);
        assert!(t1.validate().is_ok(), "merged inputs keep the trace valid");
        // The second trace's ids were shifted above the first's: both
        // builders started numbering at 0, but the merged trace must not
        // alias their unrelated ciphertexts.
        assert_eq!(t1.inputs.len(), 2);
        assert_ne!(t1.inputs[0], t1.inputs[1]);
        assert_ne!(t1.ops[0].inputs[0], t1.ops[1].inputs[0]);
    }

    #[test]
    fn builder_traces_validate() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        let y = b.fresh_ct(27);
        let z = b.hmult(x, y);
        let z = b.hrescale_at(z, 27);
        b.hrot(z, 5, 26);
        assert!(b.build().validate().is_ok());
    }

    #[test]
    fn dangling_input_ids_are_rejected() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        b.hmult(x, x);
        let mut trace = b.build();
        trace.ops.push(TracedOp {
            op: HeOp::HRot,
            level: 20,
            inputs: vec![999],
            output: Some(1000),
            in_bootstrap: false,
        });
        assert_eq!(
            trace.validate(),
            Err(TraceError::UndefinedInput {
                op_index: 1,
                id: 999
            })
        );
    }

    #[test]
    fn duplicate_output_ids_are_rejected() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        b.hmult(x, x);
        let mut trace = b.build();
        // Redefine the first op's output id with a second hand-rolled op.
        let out = trace.ops[0].output.unwrap();
        trace.ops.push(TracedOp {
            op: HeOp::HRot,
            level: 20,
            inputs: vec![x],
            output: Some(out),
            in_bootstrap: false,
        });
        assert_eq!(
            trace.validate(),
            Err(TraceError::DuplicateOutput {
                op_index: 1,
                id: out
            })
        );
    }

    #[test]
    fn fresh_ct_levels_are_recorded_and_validated() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        let y = b.fresh_ct(3);
        b.hmult_at(x, y, 27);
        let trace = b.build();
        assert_eq!(trace.input_levels, vec![27, 3]);
        assert!(trace.validate().is_ok());

        let mut bad = TraceBuilder::new(&ins);
        let z = bad.fresh_ct(99); // beyond INS-1's L = 27
        bad.hmult_at(z, z, 27);
        assert_eq!(
            bad.build().validate(),
            Err(TraceError::InputLevelOutOfRange {
                input_index: 0,
                level: 99,
                max_level: 27
            })
        );
    }

    #[test]
    fn extend_carries_input_levels() {
        let ins = CkksInstance::ins1();
        let mut a = TraceBuilder::new(&ins);
        let x = a.fresh_ct(27);
        a.hmult(x, x);
        let mut t1 = a.build();
        let mut b = TraceBuilder::new(&ins);
        let y = b.fresh_ct(5);
        b.hrot(y, 1, 5);
        t1.extend(&b.build());
        assert_eq!(t1.input_levels, vec![27, 5]);
        assert!(t1.validate().is_ok());
    }

    #[test]
    fn eviction_hints_mark_last_uses_and_dead_outputs() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        let y = b.fresh_ct(27);
        let p = b.hmult(x, y); // op 0: last use of y (x reused below)
        let q = b.hmult_at(x, p, 27); // op 1: last use of x and p
        let _r = b.hrescale_at(q, 27); // op 2: last use of q; output r is dead
        let trace = b.build();
        let hints = EvictionHints::from_trace(&trace);
        assert_eq!(hints.len(), 3);
        assert_eq!(hints.evict_after[0], vec![y]);
        let mut dead_at_1 = hints.evict_after[1].clone();
        dead_at_1.sort_unstable();
        assert_eq!(dead_at_1, vec![x, p]);
        // Op 2 kills its input q and its never-read output.
        assert_eq!(hints.evict_after[2].len(), 2);
        assert!(hints.evict_after[2].contains(&q));
    }

    #[test]
    fn out_of_budget_levels_are_rejected() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        b.hmult_at(x, x, 99);
        let trace = b.build();
        assert_eq!(
            trace.validate(),
            Err(TraceError::LevelOutOfRange {
                op_index: 0,
                level: 99,
                max_level: 27
            })
        );
    }
}
