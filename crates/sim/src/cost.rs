/// Area and peak power of one named component (one row of Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentCost {
    /// Component name, matching the paper's Table 3 rows.
    pub name: &'static str,
    /// Area in mm² (chip-level aggregate).
    pub area_mm2: f64,
    /// Peak power in W (chip-level aggregate).
    pub power_w: f64,
}

/// One point of the Fig. 10 scratchpad sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EdapPoint {
    /// Scratchpad capacity in MiB.
    pub scratchpad_mib: u64,
    /// Execution time of the measured workload in seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Chip area in mm².
    pub area_mm2: f64,
    /// Energy–delay–area product (J·s·mm²).
    pub edap: f64,
}

/// Analytical area/power model of the BTS chip, seeded with the per-component
/// numbers published in Table 3 and scaled with the scratchpad capacity for
/// the Fig. 10 sweep.
///
/// This replaces the paper's ASAP7 synthesis + FinCACTI flow (see DESIGN.md's
/// substitution table); the evaluation only consumes the resulting aggregate
/// area, power and EDAP values.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaPowerModel {
    pe_count: usize,
    scratchpad_bytes: u64,
}

/// Table 3 per-PE figures (area in µm², power in mW) at the default 256 KiB of
/// scratchpad per PE.
const PE_SCRATCHPAD_AREA_UM2: f64 = 114_724.0;
const PE_SCRATCHPAD_POWER_MW: f64 = 9.86;
const PE_RF_AREA_UM2: f64 = 12_479.0;
const PE_RF_POWER_MW: f64 = 2.29;
const PE_NTTU_AREA_UM2: f64 = 9_501.0;
const PE_NTTU_POWER_MW: f64 = 12.17;
const PE_BCONV_MODMULT_AREA_UM2: f64 = 4_070.0;
const PE_BCONV_MODMULT_POWER_MW: f64 = 0.56;
const PE_MMAU_AREA_UM2: f64 = 9_511.0;
const PE_MMAU_POWER_MW: f64 = 8.42;
const PE_EXCHANGE_AREA_UM2: f64 = 421.0;
const PE_EXCHANGE_POWER_MW: f64 = 1.03;
const PE_MODMULT_AREA_UM2: f64 = 3_833.0;
const PE_MODMULT_POWER_MW: f64 = 1.35;
const PE_MODADD_AREA_UM2: f64 = 325.0;
const PE_MODADD_POWER_MW: f64 = 0.08;

/// Table 3 chip-level figures for the non-PE components.
const NOC_AREA_MM2: f64 = 3.06;
const NOC_POWER_W: f64 = 45.93;
const GLOBAL_BRU_AREA_MM2: f64 = 0.42;
const GLOBAL_BRU_POWER_W: f64 = 0.10;
const LOCAL_BRU_AREA_MM2: f64 = 3.69;
const LOCAL_BRU_POWER_W: f64 = 0.04;
const HBM_NOC_AREA_MM2: f64 = 0.10;
const HBM_NOC_POWER_W: f64 = 6.81;
const HBM_AREA_MM2: f64 = 29.6;
const HBM_POWER_W: f64 = 31.76;
const PCIE_AREA_MM2: f64 = 19.6;
const PCIE_POWER_W: f64 = 5.37;

/// Reference scratchpad capacity the per-PE Table 3 numbers correspond to.
const REFERENCE_SCRATCHPAD_BYTES: u64 = 512 * 1024 * 1024;

impl AreaPowerModel {
    /// Model of the paper's BTS configuration (2,048 PEs, 512 MiB scratchpad).
    pub fn bts_default() -> Self {
        Self {
            pe_count: 2048,
            scratchpad_bytes: REFERENCE_SCRATCHPAD_BYTES,
        }
    }

    /// Model with a different total scratchpad capacity (Fig. 10 sweep);
    /// scratchpad area and power scale linearly with capacity.
    pub fn with_scratchpad_bytes(mut self, bytes: u64) -> Self {
        self.scratchpad_bytes = bytes;
        self
    }

    fn scratchpad_scale(&self) -> f64 {
        self.scratchpad_bytes as f64 / REFERENCE_SCRATCHPAD_BYTES as f64
    }

    /// Area of one PE in µm².
    pub fn pe_area_um2(&self) -> f64 {
        PE_SCRATCHPAD_AREA_UM2 * self.scratchpad_scale()
            + PE_RF_AREA_UM2
            + PE_NTTU_AREA_UM2
            + PE_BCONV_MODMULT_AREA_UM2
            + PE_MMAU_AREA_UM2
            + PE_EXCHANGE_AREA_UM2
            + PE_MODMULT_AREA_UM2
            + PE_MODADD_AREA_UM2
    }

    /// Peak power of one PE in mW.
    pub fn pe_power_mw(&self) -> f64 {
        PE_SCRATCHPAD_POWER_MW * self.scratchpad_scale()
            + PE_RF_POWER_MW
            + PE_NTTU_POWER_MW
            + PE_BCONV_MODMULT_POWER_MW
            + PE_MMAU_POWER_MW
            + PE_EXCHANGE_POWER_MW
            + PE_MODMULT_POWER_MW
            + PE_MODADD_POWER_MW
    }

    /// Total chip area in mm² (Table 3 bottom).
    pub fn total_area_mm2(&self) -> f64 {
        self.pe_count as f64 * self.pe_area_um2() / 1e6
            + NOC_AREA_MM2
            + GLOBAL_BRU_AREA_MM2
            + LOCAL_BRU_AREA_MM2
            + HBM_NOC_AREA_MM2
            + HBM_AREA_MM2
            + PCIE_AREA_MM2
    }

    /// Total peak power in W (Table 3 bottom).
    pub fn total_power_w(&self) -> f64 {
        self.pe_count as f64 * self.pe_power_mw() / 1e3
            + NOC_POWER_W
            + GLOBAL_BRU_POWER_W
            + LOCAL_BRU_POWER_W
            + HBM_NOC_POWER_W
            + HBM_POWER_W
            + PCIE_POWER_W
    }

    /// The full Table 3: per-PE components followed by chip-level components
    /// and the total.
    pub fn table3(&self) -> Vec<ComponentCost> {
        let pe = self.pe_count as f64;
        let row = |name, area_um2: f64, power_mw: f64| ComponentCost {
            name,
            area_mm2: pe * area_um2 / 1e6,
            power_w: pe * power_mw / 1e3,
        };
        vec![
            row(
                "Scratchpad SRAM",
                PE_SCRATCHPAD_AREA_UM2 * self.scratchpad_scale(),
                PE_SCRATCHPAD_POWER_MW * self.scratchpad_scale(),
            ),
            row("RFs", PE_RF_AREA_UM2, PE_RF_POWER_MW),
            row("NTTU", PE_NTTU_AREA_UM2, PE_NTTU_POWER_MW),
            row(
                "ModMult (BConvU)",
                PE_BCONV_MODMULT_AREA_UM2,
                PE_BCONV_MODMULT_POWER_MW,
            ),
            row("MMAU (BConvU)", PE_MMAU_AREA_UM2, PE_MMAU_POWER_MW),
            row("Exchange unit", PE_EXCHANGE_AREA_UM2, PE_EXCHANGE_POWER_MW),
            row("ModMult", PE_MODMULT_AREA_UM2, PE_MODMULT_POWER_MW),
            row("ModAdd", PE_MODADD_AREA_UM2, PE_MODADD_POWER_MW),
            ComponentCost {
                name: "Inter-PE NoC",
                area_mm2: NOC_AREA_MM2,
                power_w: NOC_POWER_W,
            },
            ComponentCost {
                name: "Global BrU + NoC",
                area_mm2: GLOBAL_BRU_AREA_MM2,
                power_w: GLOBAL_BRU_POWER_W,
            },
            ComponentCost {
                name: "128 local BrUs",
                area_mm2: LOCAL_BRU_AREA_MM2,
                power_w: LOCAL_BRU_POWER_W,
            },
            ComponentCost {
                name: "HBM2e NoC",
                area_mm2: HBM_NOC_AREA_MM2,
                power_w: HBM_NOC_POWER_W,
            },
            ComponentCost {
                name: "2 HBM2e stacks",
                area_mm2: HBM_AREA_MM2,
                power_w: HBM_POWER_W,
            },
            ComponentCost {
                name: "PCIe5x16 interface",
                area_mm2: PCIE_AREA_MM2,
                power_w: PCIE_POWER_W,
            },
            ComponentCost {
                name: "Total",
                area_mm2: self.total_area_mm2(),
                power_w: self.total_power_w(),
            },
        ]
    }

    /// Energy in joules for a run of `seconds` with the given average
    /// utilizations of the NTTUs, BConvUs, HBM and element-wise units.
    /// Idle components draw a 20% static floor of their peak power.
    pub fn energy_joules(
        &self,
        seconds: f64,
        ntt_util: f64,
        bconv_util: f64,
        hbm_util: f64,
        elementwise_util: f64,
    ) -> f64 {
        const STATIC_FRACTION: f64 = 0.2;
        let pe = self.pe_count as f64 / 1e3; // mW → W conversion folded in
        let dynamic = |peak_w: f64, util: f64| {
            peak_w * (STATIC_FRACTION + (1.0 - STATIC_FRACTION) * util.clamp(0.0, 1.0))
        };
        let ntt_w = dynamic(pe * PE_NTTU_POWER_MW, ntt_util);
        let bconv_w = dynamic(
            pe * (PE_MMAU_POWER_MW + PE_BCONV_MODMULT_POWER_MW),
            bconv_util,
        );
        let elementwise_w = dynamic(
            pe * (PE_MODMULT_POWER_MW + PE_MODADD_POWER_MW),
            elementwise_util,
        );
        let sram_w = dynamic(
            pe * (PE_SCRATCHPAD_POWER_MW * self.scratchpad_scale() + PE_RF_POWER_MW),
            (ntt_util + bconv_util) / 2.0,
        );
        let noc_w = dynamic(
            NOC_POWER_W + GLOBAL_BRU_POWER_W + LOCAL_BRU_POWER_W + HBM_NOC_POWER_W,
            ntt_util,
        );
        let hbm_w = dynamic(HBM_POWER_W, hbm_util);
        let other_w = dynamic(PCIE_POWER_W + pe * PE_EXCHANGE_POWER_MW, 0.1);
        seconds * (ntt_w + bconv_w + elementwise_w + sram_w + noc_w + hbm_w + other_w)
    }

    /// Builds a Fig. 10 EDAP point from a measured workload time and the
    /// utilizations reported by the simulator.
    pub fn edap_point(
        &self,
        seconds: f64,
        ntt_util: f64,
        bconv_util: f64,
        hbm_util: f64,
        elementwise_util: f64,
    ) -> EdapPoint {
        let energy = self.energy_joules(seconds, ntt_util, bconv_util, hbm_util, elementwise_util);
        let area = self.total_area_mm2();
        EdapPoint {
            scratchpad_mib: self.scratchpad_bytes / (1024 * 1024),
            seconds,
            energy_j: energy,
            area_mm2: area,
            edap: energy * seconds * area,
        }
    }
}

impl Default for AreaPowerModel {
    fn default() -> Self {
        Self::bts_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_totals_match_paper() {
        let m = AreaPowerModel::bts_default();
        // Paper: 373.6 mm², 163.2 W.
        assert!(
            (m.total_area_mm2() - 373.6).abs() < 2.0,
            "area = {}",
            m.total_area_mm2()
        );
        assert!(
            (m.total_power_w() - 163.2).abs() < 2.0,
            "power = {}",
            m.total_power_w()
        );
        // Per-PE: 154,863 µm², 35.75 mW.
        assert!((m.pe_area_um2() - 154_863.0).abs() < 10.0);
        assert!((m.pe_power_mw() - 35.75).abs() < 0.05);
    }

    #[test]
    fn pe_array_row_matches_paper() {
        let m = AreaPowerModel::bts_default();
        let pes_area: f64 = m.table3().iter().take(8).map(|c| c.area_mm2).sum();
        let pes_power: f64 = m.table3().iter().take(8).map(|c| c.power_w).sum();
        assert!((pes_area - 317.2).abs() < 1.0, "2048 PE area = {pes_area}");
        assert!(
            (pes_power - 73.21).abs() < 0.5,
            "2048 PE power = {pes_power}"
        );
    }

    #[test]
    fn scratchpad_scaling_moves_area_and_power() {
        let small = AreaPowerModel::bts_default().with_scratchpad_bytes(192 * 1024 * 1024);
        let big = AreaPowerModel::bts_default().with_scratchpad_bytes(1024 * 1024 * 1024);
        assert!(small.total_area_mm2() < AreaPowerModel::bts_default().total_area_mm2());
        assert!(big.total_area_mm2() > AreaPowerModel::bts_default().total_area_mm2());
        assert!(big.total_power_w() > small.total_power_w());
    }

    #[test]
    fn energy_is_monotone_in_utilization_and_bounded_by_peak() {
        let m = AreaPowerModel::bts_default();
        let low = m.energy_joules(1.0, 0.1, 0.1, 0.1, 0.1);
        let high = m.energy_joules(1.0, 0.9, 0.9, 0.9, 0.9);
        assert!(high > low);
        assert!(high <= m.total_power_w() * 1.0 * 1.05);
        assert!(low > 0.0);
    }
}
