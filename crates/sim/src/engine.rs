use std::collections::{BTreeMap, HashMap, VecDeque};

use bts_params::CkksInstance;

use crate::config::BtsConfig;
use crate::cost::AreaPowerModel;
use crate::trace::{CtId, EvictionHints, HeOp, OpTrace};

/// Per-op-class statistics in a [`SimReport`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpClassStats {
    /// Number of ops of this class executed.
    pub count: usize,
    /// Total time spent in this class, in seconds.
    pub seconds: f64,
}

/// Result of simulating an HE-op trace on a BTS configuration.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// End-to-end execution time in seconds.
    pub total_seconds: f64,
    /// Time spent inside bootstrapping regions, in seconds.
    pub bootstrap_seconds: f64,
    /// Per-op-class breakdown.
    pub per_op: BTreeMap<HeOp, OpClassStats>,
    /// Total bytes streamed from HBM.
    pub hbm_bytes: u64,
    /// Bytes of evaluation keys streamed from HBM.
    pub evk_bytes: u64,
    /// Bytes of ciphertexts/plaintexts (re)loaded on software-cache misses.
    pub ct_miss_bytes: u64,
    /// Software-cache hits (ciphertext operand found in the scratchpad).
    pub cache_hits: usize,
    /// Software-cache misses.
    pub cache_misses: usize,
    /// Average NTTU utilization (busy fraction of the run).
    pub ntt_utilization: f64,
    /// Average BConvU (MMAU) utilization.
    pub bconv_utilization: f64,
    /// Average HBM-bandwidth utilization.
    pub hbm_utilization: f64,
    /// Average element-wise unit utilization.
    pub elementwise_utilization: f64,
    /// Peak scratchpad demand (temporary data + resident ciphertexts), bytes.
    pub scratchpad_peak_bytes: u64,
    /// Energy estimate in joules.
    pub energy_j: f64,
    /// Chip area in mm² for the simulated configuration.
    pub area_mm2: f64,
    /// Makespan of the dependency-aware schedule in seconds, when the trace
    /// was executed through `bts-sched`'s `run_scheduled` (None for a plain
    /// serial run). Always ≤ [`SimReport::total_seconds`].
    pub scheduled_seconds: Option<f64>,
    /// Length of the trace's critical path (longest dependency chain,
    /// including bootstrap-region barriers) in seconds, when scheduled.
    pub critical_path_seconds: Option<f64>,
}

impl SimReport {
    /// Energy–delay–area product in J·s·mm².
    pub fn edap(&self) -> f64 {
        self.energy_j * self.total_seconds * self.area_mm2
    }

    /// Fraction of the run spent bootstrapping (Fig. 7b).
    pub fn bootstrap_fraction(&self) -> f64 {
        if self.total_seconds == 0.0 {
            0.0
        } else {
            self.bootstrap_seconds / self.total_seconds
        }
    }

    /// Software-cache hit rate across all ciphertext operand accesses.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Speedup of the dependency-aware schedule over serial execution
    /// (`total_seconds / scheduled_seconds`), when the report came from a
    /// scheduled run. Serial time is an upper bound of the schedule by
    /// construction, so the value is ≥ 1; it is clamped there to absorb
    /// floating-point rounding in the two accumulations.
    pub fn parallel_speedup(&self) -> Option<f64> {
        let scheduled = self.scheduled_seconds?;
        if scheduled <= 0.0 {
            return Some(1.0);
        }
        Some((self.total_seconds / scheduled).max(1.0))
    }

    /// Accumulates another report into this one — the aggregation hook a
    /// multi-job serving run uses to report combined resource usage across
    /// its per-job reports. Counters (time, bytes, hits, per-op stats,
    /// energy) sum; utilizations merge time-weighted; peak scratchpad demand
    /// takes the max; area stays per-chip (the jobs share one accelerator,
    /// asserted equal). Schedule-derived fields are cleared: a merged report
    /// describes serial work totals, and the co-scheduled makespan lives in
    /// the serving layer's own report.
    ///
    /// # Panics
    ///
    /// Panics if the two reports model different chips (different
    /// `area_mm2`), which would make the summed energy and EDAP meaningless.
    pub fn merge(&mut self, other: &SimReport) {
        assert!(
            (self.area_mm2 - other.area_mm2).abs() < 1e-9 * self.area_mm2.max(1.0),
            "merging reports from different chips ({} vs {} mm²)",
            self.area_mm2,
            other.area_mm2
        );
        let total = self.total_seconds + other.total_seconds;
        let weighted = |a: f64, b: f64| {
            if total > 0.0 {
                (a * self.total_seconds + b * other.total_seconds) / total
            } else {
                0.0
            }
        };
        self.ntt_utilization = weighted(self.ntt_utilization, other.ntt_utilization);
        self.bconv_utilization = weighted(self.bconv_utilization, other.bconv_utilization);
        self.hbm_utilization = weighted(self.hbm_utilization, other.hbm_utilization);
        self.elementwise_utilization =
            weighted(self.elementwise_utilization, other.elementwise_utilization);
        self.total_seconds = total;
        self.bootstrap_seconds += other.bootstrap_seconds;
        for (op, stats) in &other.per_op {
            let entry = self.per_op.entry(*op).or_default();
            entry.count += stats.count;
            entry.seconds += stats.seconds;
        }
        self.hbm_bytes += other.hbm_bytes;
        self.evk_bytes += other.evk_bytes;
        self.ct_miss_bytes += other.ct_miss_bytes;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.scratchpad_peak_bytes = self.scratchpad_peak_bytes.max(other.scratchpad_peak_bytes);
        self.energy_j += other.energy_j;
        self.scheduled_seconds = None;
        self.critical_path_seconds = None;
    }
}

/// Detailed per-functional-unit cost of a single traced op, independent of
/// cache state. Consumed by the Fig. 8 timeline and by `bts-sched`'s machine
/// model, which turns the per-unit busy times into resource reservations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCost {
    /// NTTU busy time (butterflies / chip butterfly rate), seconds.
    pub ntt_seconds: f64,
    /// BConvU (MMAU) busy time, seconds.
    pub bconv_seconds: f64,
    /// Raw element-wise (ModMult/ModAdd) busy time, seconds.
    pub elementwise_seconds: f64,
    /// Element-wise time the serial cost model actually charges: the engine
    /// assumes most element-wise work pipelines under the NTT/BConv phases
    /// and scratchpad streaming, so only a fraction of
    /// [`OpCost::elementwise_seconds`] contributes to the op latency. The
    /// scheduler reserves the element-wise unit for this charged time so
    /// scheduled and serial runs agree on what one op costs.
    pub elementwise_charged_seconds: f64,
    /// Serial compute latency of the op (the pipeline-overlap combination of
    /// the three unit times), seconds.
    pub compute_seconds: f64,
    /// Evaluation-key bytes streamed from HBM (key-switching ops only).
    pub evk_bytes: u64,
    /// Plaintext operand bytes streamed from HBM (PMult/PAdd).
    pub operand_bytes: u64,
    /// Peak temporary scratchpad footprint of the op, bytes.
    pub temp_bytes: u64,
}

/// One op's execution charge after resolving ciphertext operands against the
/// scratchpad cache in program order: the raw unit costs plus the HBM traffic
/// and the serial latency the engine bills for the op. Produced by
/// [`Simulator::op_timings`]; both the serial accounting and `bts-sched`'s
/// list scheduler fold over the same vector, so the two execution modes can
/// never disagree on per-op costs.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpTiming {
    /// Cache-independent unit costs.
    pub cost: OpCost,
    /// Ciphertext/plaintext bytes (re)loaded because of cache misses.
    pub miss_bytes: u64,
    /// Total HBM bytes for this op (`evk_bytes + miss_bytes`).
    pub hbm_bytes: u64,
    /// Time the op occupies the HBM channel, seconds.
    pub hbm_seconds: f64,
    /// Serial latency charged for the op: `max(compute, hbm)`.
    pub seconds: f64,
    /// Ciphertext operand hits in the software cache.
    pub cache_hits: usize,
    /// Ciphertext operand misses.
    pub cache_misses: usize,
    /// Scratchpad demand while the op runs (temporaries + resident cts).
    pub scratch_bytes: u64,
}

/// The BTS accelerator simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: BtsConfig,
    instance: CkksInstance,
    cost_model: AreaPowerModel,
}

impl Simulator {
    /// Creates a simulator for a hardware configuration and CKKS instance.
    pub fn new(config: BtsConfig, instance: CkksInstance) -> Self {
        let cost_model =
            AreaPowerModel::bts_default().with_scratchpad_bytes(config.scratchpad_bytes);
        Self {
            config,
            instance,
            cost_model,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &BtsConfig {
        &self.config
    }

    /// The CKKS instance.
    pub fn instance(&self) -> &CkksInstance {
        &self.instance
    }

    /// Compute/traffic cost of one op, independent of cache state.
    pub fn op_cost(&self, op: HeOp, level: usize) -> OpCost {
        let ins = &self.instance;
        let n = ins.n() as f64;
        let log_n = ins.log_n() as f64;
        let l1 = (level + 1) as f64;
        let k = ins.num_special() as f64;
        let dnum_l = ins.dnum_at_level(level) as f64;
        let limb_butterflies = n / 2.0 * log_n;
        let butterfly_rate = self.config.butterfly_rate();
        let mmau_rate = self.config.mmau_rate();
        let ew_rate = self.config.elementwise_rate();
        let limb_bytes = ins.limb_bytes() as f64;

        let mut cost = OpCost::default();
        match op {
            HeOp::HMult | HeOp::HRot | HeOp::Conjugate => {
                // ModUp: per-slice iNTT, BConv, NTT of converted limbs.
                let mut ntt_limbs = 0.0;
                let mut bconv_macs = 0.0;
                let slices = dnum_l as usize;
                for j in 0..slices {
                    let lo = j as f64 * k;
                    let hi = (lo + k).min(l1);
                    let slice = hi - lo;
                    let target = (l1 - slice) + k;
                    ntt_limbs += slice + target;
                    bconv_macs += slice * n + slice * target * n;
                }
                // ModDown for both output polynomials.
                ntt_limbs += 2.0 * k + 2.0 * l1;
                bconv_macs += 2.0 * (k * n + k * l1 * n);
                // Element-wise work: tensor product (HMult only), evk inner
                // products, SSA, automorphism permutation (HRot/Conj).
                let mut ew = 2.0 * dnum_l * (l1 + k) * n + 2.0 * l1 * n;
                if op == HeOp::HMult {
                    ew += 4.0 * l1 * n;
                } else {
                    ew += 2.0 * l1 * n; // permutation traffic handled per-residue
                }
                cost.ntt_seconds = ntt_limbs * limb_butterflies / butterfly_rate;
                cost.bconv_seconds = bconv_macs / mmau_rate;
                cost.elementwise_seconds = ew / ew_rate;
                cost.evk_bytes = ins.evk_bytes_at_level(level);
                cost.operand_bytes = 0;
                cost.temp_bytes = ((dnum_l + 2.0) * (k + l1) * limb_bytes) as u64;
            }
            HeOp::PMult | HeOp::CMult => {
                cost.elementwise_seconds = 2.0 * l1 * n / ew_rate;
                cost.operand_bytes = if op == HeOp::PMult {
                    ins.pt_bytes(level)
                } else {
                    0
                };
                cost.temp_bytes = (2.0 * l1 * limb_bytes) as u64;
            }
            HeOp::PAdd | HeOp::HAdd | HeOp::CAdd => {
                cost.elementwise_seconds = 2.0 * l1 * n / ew_rate;
                cost.operand_bytes = if op == HeOp::PAdd {
                    ins.pt_bytes(level)
                } else {
                    0
                };
                cost.temp_bytes = (2.0 * l1 * limb_bytes) as u64;
            }
            HeOp::HRescale => {
                // iNTT of the dropped limb, NTT-domain correction of the rest.
                cost.ntt_seconds = 2.0 * l1 * limb_butterflies / butterfly_rate;
                cost.elementwise_seconds = 2.0 * l1 * n / ew_rate;
                cost.temp_bytes = (2.0 * l1 * limb_bytes) as u64;
            }
            HeOp::ModRaise => {
                let max_l1 = (ins.max_level() + 1) as f64;
                cost.bconv_seconds = 2.0 * (n + max_l1 * n) / mmau_rate;
                cost.ntt_seconds = 2.0 * max_l1 * limb_butterflies / butterfly_rate;
                cost.temp_bytes = (2.0 * max_l1 * limb_bytes) as u64;
            }
        }
        cost.elementwise_charged_seconds = if self.config.overlap_bconv_intt {
            cost.elementwise_seconds * 0.1
        } else {
            cost.elementwise_seconds * 0.5
        };
        cost.compute_seconds = if self.config.overlap_bconv_intt {
            cost.ntt_seconds.max(cost.bconv_seconds) + cost.elementwise_charged_seconds
        } else {
            cost.ntt_seconds + cost.bconv_seconds + cost.elementwise_charged_seconds
        };
        cost
    }

    /// Runs a trace and reports performance, traffic, utilization and energy.
    ///
    /// # Panics
    ///
    /// Panics if the trace fails [`OpTrace::validate`] (dangling ciphertext
    /// ids or out-of-budget levels); use [`Simulator::try_run`] to handle the
    /// error instead.
    pub fn run(&self, trace: &OpTrace) -> SimReport {
        match self.try_run(trace) {
            Ok(report) => report,
            Err(e) => panic!("invalid op trace: {e}"),
        }
    }

    /// Validates a trace ([`OpTrace::validate`]) and runs it.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found in the trace.
    pub fn try_run(&self, trace: &OpTrace) -> Result<SimReport, crate::trace::TraceError> {
        Ok(self.fold_report(trace, &self.op_timings(trace)?))
    }

    /// Runs a trace with dead-ciphertext eviction hints applied to the
    /// software-managed cache: ids listed in `hints.evict_after[i]` are
    /// dropped from the scratchpad as soon as op `i` retires, freeing space
    /// for live ciphertexts instead of waiting for LRU pressure (the ROADMAP
    /// "circuit-level caching hints" item).
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found in the trace.
    pub fn try_run_with_hints(
        &self,
        trace: &OpTrace,
        hints: &EvictionHints,
    ) -> Result<SimReport, crate::trace::TraceError> {
        Ok(self.fold_report(trace, &self.op_timings_with_hints(trace, Some(hints))?))
    }

    /// Validates and runs a trace once, returning both the per-op timings and
    /// the folded report. This is the single-pass entry `bts-sched` builds
    /// schedules from: the cache-simulation sweep runs once and both the
    /// serial accounting and the scheduler consume the same vector.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found in the trace (or a hints
    /// arity mismatch).
    pub fn try_run_timed(
        &self,
        trace: &OpTrace,
        hints: Option<&EvictionHints>,
    ) -> Result<(Vec<OpTiming>, SimReport), crate::trace::TraceError> {
        let timings = self.op_timings_with_hints(trace, hints)?;
        let report = self.fold_report(trace, &timings);
        Ok((timings, report))
    }

    /// Per-op execution charges with the scratchpad cache resolved in program
    /// order. This is the single source of per-op truth: [`Simulator::try_run`]
    /// folds the vector into a [`SimReport`], and `bts-sched` schedules the
    /// same timings onto bounded functional units, so the two modes can never
    /// diverge on what one op costs.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found in the trace.
    pub fn op_timings(&self, trace: &OpTrace) -> Result<Vec<OpTiming>, crate::trace::TraceError> {
        self.op_timings_with_hints(trace, None)
    }

    /// Ciphertext ids that are *forwarded* rather than cached: op outputs
    /// whose only consumer is the immediately following op. Such values live
    /// in the scratchpad's temporary region between producer and consumer
    /// (already accounted by `temp_bytes`) and never enter the ciphertext
    /// cache, so they neither occupy cache capacity nor count as operand
    /// hits/misses. Without this, the single-use intermediates of a BSGS
    /// stage (rotate → pmult → accumulate) would evict the long-lived stage
    /// input on instances whose cache holds only two or three top-level
    /// ciphertexts (INS-2/3 at 512 MiB).
    fn forwarded_ids(trace: &OpTrace) -> std::collections::HashSet<CtId> {
        let mut uses: HashMap<CtId, (usize, usize)> = HashMap::new(); // id -> (count, last op)
        for (i, op) in trace.ops.iter().enumerate() {
            for &id in &op.inputs {
                let entry = uses.entry(id).or_insert((0, i));
                entry.0 += 1;
                entry.1 = i;
            }
        }
        let mut forwarded = std::collections::HashSet::new();
        for (i, op) in trace.ops.iter().enumerate() {
            if let Some(out) = op.output {
                if uses.get(&out) == Some(&(1, i + 1)) {
                    forwarded.insert(out);
                }
            }
        }
        forwarded
    }

    /// [`Simulator::op_timings`] with optional dead-ciphertext eviction hints
    /// applied to the cache pass.
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found in the trace.
    pub fn op_timings_with_hints(
        &self,
        trace: &OpTrace,
        hints: Option<&EvictionHints>,
    ) -> Result<Vec<OpTiming>, crate::trace::TraceError> {
        self.op_timings_impl(trace, hints, false)
    }

    /// [`Simulator::op_timings`] with Belady-style (MIN) replacement in the
    /// ciphertext cache: on pressure, the ciphertext whose next use lies
    /// furthest in the future loses — a resident is evicted, or the incoming
    /// ciphertext is bypassed (not cached) when it is itself the
    /// furthest-needed, so dead data goes first and sooner-needed residents
    /// survive. Next-use distances are exact — the trace is fully known at
    /// simulation time, the same liveness information `LoweredTrace::hints`
    /// is derived from — so this is the reference bound practical policies
    /// (LRU, last-use hints) are measured against. (With variable-size
    /// ciphertexts exact offline optimality is a knapsack problem; this is
    /// the standard furthest-next-use heuristic, not a proven optimum.)
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found in the trace.
    pub fn op_timings_belady(
        &self,
        trace: &OpTrace,
    ) -> Result<Vec<OpTiming>, crate::trace::TraceError> {
        self.op_timings_impl(trace, None, true)
    }

    /// Runs a trace with Belady (furthest-next-use) ciphertext eviction — see
    /// [`Simulator::op_timings_belady`].
    ///
    /// # Errors
    ///
    /// Returns the first structural defect found in the trace.
    pub fn try_run_belady(&self, trace: &OpTrace) -> Result<SimReport, crate::trace::TraceError> {
        Ok(self.fold_report(trace, &self.op_timings_belady(trace)?))
    }

    /// The shared cache-resolution sweep behind every `op_timings*` entry
    /// point. `belady` switches the replacement policy from LRU (optionally
    /// assisted by dead-ciphertext `hints`) to furthest-next-use.
    fn op_timings_impl(
        &self,
        trace: &OpTrace,
        hints: Option<&EvictionHints>,
        belady: bool,
    ) -> Result<Vec<OpTiming>, crate::trace::TraceError> {
        trace.validate()?;
        if let Some(hints) = hints {
            if hints.len() != trace.ops.len() {
                return Err(crate::trace::TraceError::HintArityMismatch {
                    hint_ops: hints.len(),
                    trace_ops: trace.ops.len(),
                });
            }
        }
        let forwarded = Self::forwarded_ids(trace);
        // Belady needs exact next-use positions: queue of op indices at which
        // each ciphertext is (still) consumed, popped as accesses retire.
        let mut use_positions: HashMap<CtId, VecDeque<u32>> = HashMap::new();
        if belady {
            for (i, op) in trace.ops.iter().enumerate() {
                for &id in &op.inputs {
                    use_positions.entry(id).or_default().push_back(i as u32);
                }
            }
        }
        let next_use_of = |q: Option<&VecDeque<u32>>| -> u32 {
            q.and_then(|q| q.front().copied()).unwrap_or(u32::MAX)
        };
        let mut cache = if belady {
            CacheModel::Belady(BeladyCache::new(self.cache_capacity()))
        } else {
            CacheModel::Lru(CtCache::new(self.cache_capacity()))
        };
        let telemetry_on = bts_telemetry::enabled();
        let mut timings = Vec::with_capacity(trace.ops.len());
        // Serialized op start time: the engine charges ops back to back, so
        // the running sum places each op's interval on the telemetry track.
        let mut serial_t = 0.0f64;
        for (index, traced) in trace.ops.iter().enumerate() {
            let cost = self.op_cost(traced.op, traced.level);
            // Ciphertext operand residency.
            let ct_bytes = self.instance.ct_bytes(traced.level);
            let mut miss_bytes = cost.operand_bytes;
            let mut hits = 0usize;
            let mut misses = 0usize;
            let mut evictions = 0usize;
            let mut hint_evictions = 0usize;
            for &input in &traced.inputs {
                if forwarded.contains(&input) {
                    continue; // producer → consumer forwarding, not a cache access
                }
                let next_use = if belady {
                    let q = use_positions.get_mut(&input).expect("validated input");
                    q.pop_front(); // this access
                    next_use_of(Some(q))
                } else {
                    0
                };
                if cache.touch(input, next_use) {
                    hits += 1;
                } else {
                    misses += 1;
                    miss_bytes += ct_bytes;
                    evictions += cache.insert(input, ct_bytes, next_use);
                }
            }
            if let Some(out) = traced.output {
                if !forwarded.contains(&out) {
                    let next_use = if belady {
                        next_use_of(use_positions.get(&out))
                    } else {
                        0
                    };
                    evictions += cache.insert(out, ct_bytes, next_use);
                }
            }
            if let Some(hints) = hints {
                if let Some(dead) = hints.evict_after.get(index) {
                    for &id in dead {
                        if cache.remove(id) {
                            hint_evictions += 1;
                        }
                    }
                }
            }
            let hbm_bytes = cost.evk_bytes + miss_bytes;
            let hbm_seconds = hbm_bytes as f64 / self.config.hbm.bytes_per_sec();
            let seconds = cost.compute_seconds.max(hbm_seconds);
            if telemetry_on {
                use bts_telemetry::ArgValue;
                bts_telemetry::emit_complete(
                    "engine",
                    &format!("{:?}@L{}", traced.op, traced.level),
                    serial_t,
                    seconds,
                    &[
                        ("index", ArgValue::U64(index as u64)),
                        ("hbm_bytes", ArgValue::U64(hbm_bytes)),
                        ("miss_bytes", ArgValue::U64(miss_bytes)),
                        ("evk_bytes", ArgValue::U64(cost.evk_bytes)),
                        ("cache_hits", ArgValue::U64(hits as u64)),
                        ("cache_misses", ArgValue::U64(misses as u64)),
                        ("evictions", ArgValue::U64(evictions as u64)),
                        ("hint_evictions", ArgValue::U64(hint_evictions as u64)),
                    ],
                );
                if evictions + hint_evictions > 0 {
                    bts_telemetry::emit_instant(
                        "scratchpad",
                        "evict",
                        serial_t,
                        &[
                            ("evictions", ArgValue::U64(evictions as u64)),
                            ("hint_evictions", ArgValue::U64(hint_evictions as u64)),
                            ("used_bytes", ArgValue::U64(cache.used_bytes())),
                        ],
                    );
                }
                bts_telemetry::counter_add("sim.cache.hits", hits as u64);
                bts_telemetry::counter_add("sim.cache.misses", misses as u64);
                bts_telemetry::counter_add(
                    "sim.cache.evictions",
                    (evictions + hint_evictions) as u64,
                );
            }
            serial_t += seconds;
            timings.push(OpTiming {
                cost,
                miss_bytes,
                hbm_bytes,
                hbm_seconds,
                seconds,
                cache_hits: hits,
                cache_misses: misses,
                scratch_bytes: cost.temp_bytes + cache.used_bytes(),
            });
        }
        Ok(timings)
    }

    /// Folds per-op timings into the aggregate report.
    fn fold_report(&self, trace: &OpTrace, timings: &[OpTiming]) -> SimReport {
        let mut total = 0.0f64;
        let mut bootstrap = 0.0f64;
        let mut per_op: BTreeMap<HeOp, OpClassStats> = BTreeMap::new();
        let mut evk_bytes = 0u64;
        let mut ct_miss_bytes = 0u64;
        let mut hits = 0usize;
        let mut misses = 0usize;
        let mut ntt_busy = 0.0f64;
        let mut bconv_busy = 0.0f64;
        let mut ew_busy = 0.0f64;
        let mut peak_scratch = 0u64;

        for (traced, timing) in trace.ops.iter().zip(timings) {
            total += timing.seconds;
            if traced.in_bootstrap {
                bootstrap += timing.seconds;
            }
            let entry = per_op.entry(traced.op).or_default();
            entry.count += 1;
            entry.seconds += timing.seconds;
            evk_bytes += timing.cost.evk_bytes;
            ct_miss_bytes += timing.miss_bytes;
            hits += timing.cache_hits;
            misses += timing.cache_misses;
            ntt_busy += timing.cost.ntt_seconds;
            bconv_busy += timing.cost.bconv_seconds;
            ew_busy += timing.cost.elementwise_seconds;
            peak_scratch = peak_scratch.max(timing.scratch_bytes);
        }

        let hbm_bytes = evk_bytes + ct_miss_bytes;
        let hbm_util = if total > 0.0 {
            (hbm_bytes as f64 / self.config.hbm.bytes_per_sec()) / total
        } else {
            0.0
        };
        let ntt_util = if total > 0.0 { ntt_busy / total } else { 0.0 };
        let bconv_util = if total > 0.0 { bconv_busy / total } else { 0.0 };
        let ew_util = if total > 0.0 { ew_busy / total } else { 0.0 };
        let energy = self
            .cost_model
            .energy_joules(total, ntt_util, bconv_util, hbm_util, ew_util);

        SimReport {
            total_seconds: total,
            bootstrap_seconds: bootstrap,
            per_op,
            hbm_bytes,
            evk_bytes,
            ct_miss_bytes,
            cache_hits: hits,
            cache_misses: misses,
            ntt_utilization: ntt_util.min(1.0),
            bconv_utilization: bconv_util.min(1.0),
            hbm_utilization: hbm_util.min(1.0),
            elementwise_utilization: ew_util.min(1.0),
            scratchpad_peak_bytes: peak_scratch,
            energy_j: energy,
            area_mm2: self.cost_model.total_area_mm2(),
            scheduled_seconds: None,
            critical_path_seconds: None,
        }
    }

    /// Peak temporary-data footprint of one key-switching op at the maximum
    /// level (intermediate residue polynomials of the decomposition slices plus
    /// the streamed evaluation-key slice being consumed). Calibrated against
    /// the Table 4 "Temp data" column: the model reproduces 183 / 304 / 365 MiB
    /// for INS-1/2/3 within a few percent.
    pub fn temp_data_bytes(&self) -> u64 {
        let ins = &self.instance;
        if let Some(reported) = ins.reported_temp_bytes() {
            return reported;
        }
        let max_level = ins.max_level();
        let limbs_full = (ins.num_special() + max_level + 1) as u64;
        // (dnum + 2) working polynomials on the extended base.
        (ins.dnum() as u64 + 2) * limbs_full * ins.limb_bytes()
    }

    /// Scratchpad capacity left for the software-managed ciphertext cache
    /// after reserving room for key-switching temporaries and the streaming
    /// evaluation-key buffer (§5.3, §6.2 allocation priority).
    pub fn cache_capacity(&self) -> u64 {
        self.config
            .scratchpad_bytes
            .saturating_sub(self.temp_data_bytes())
    }
}

/// Replacement-policy dispatch for the cache sweep: LRU (the §5.3 software
/// cache, optionally assisted by eviction hints) or Belady furthest-next-use.
#[derive(Debug, Clone)]
enum CacheModel {
    Lru(CtCache),
    Belady(BeladyCache),
}

impl CacheModel {
    /// Hit test, refreshing recency (LRU) or the stored next-use (Belady).
    fn touch(&mut self, id: CtId, next_use: u32) -> bool {
        match self {
            CacheModel::Lru(c) => c.touch(id),
            CacheModel::Belady(c) => c.touch(id, next_use),
        }
    }

    /// Inserts, returning how many resident ciphertexts were evicted to make
    /// room (0 on bypass or when the entry fit without pressure).
    fn insert(&mut self, id: CtId, bytes: u64, next_use: u32) -> usize {
        match self {
            CacheModel::Lru(c) => c.insert(id, bytes),
            CacheModel::Belady(c) => c.insert(id, bytes, next_use),
        }
    }

    /// Drops an entry; true if it was resident.
    fn remove(&mut self, id: CtId) -> bool {
        match self {
            CacheModel::Lru(c) => c.remove(id),
            CacheModel::Belady(c) => c.remove(id),
        }
    }

    fn used_bytes(&self) -> u64 {
        match self {
            CacheModel::Lru(c) => c.used_bytes(),
            CacheModel::Belady(c) => c.used_bytes(),
        }
    }
}

/// Belady-style (MIN) replacement: every resident ciphertext carries the op
/// index of its next use (`u32::MAX` = never again); under pressure the
/// furthest-needed ciphertext loses — evicted if resident, bypassed if
/// incoming — so dead data goes first and the live set is what the future
/// needs soonest.
#[derive(Debug, Clone)]
struct BeladyCache {
    capacity: u64,
    used: u64,
    /// id → (bytes, next-use op index).
    entries: HashMap<CtId, (u64, u32)>,
}

impl BeladyCache {
    fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            entries: HashMap::new(),
        }
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    fn touch(&mut self, id: CtId, next_use: u32) -> bool {
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.1 = next_use;
            true
        } else {
            false
        }
    }

    fn remove(&mut self, id: CtId) -> bool {
        if let Some((bytes, _)) = self.entries.remove(&id) {
            self.used -= bytes;
            true
        } else {
            false
        }
    }

    /// Inserts, returning the number of evicted victims (0 on bypass).
    fn insert(&mut self, id: CtId, bytes: u64, next_use: u32) -> usize {
        if bytes > self.capacity {
            return 0; // cannot cache at all
        }
        if self.touch(id, next_use) {
            return 0;
        }
        let mut evicted = 0usize;
        if self.used + bytes > self.capacity {
            // Pick victims furthest-next-use-first (ties to the larger id)
            // until the incoming ciphertext fits — but commit the evictions
            // only if *every* victim is needed later than the incoming one.
            // Otherwise bypass (don't cache) and keep all residents: caching
            // it would trade a sooner-needed resident for a later-needed
            // newcomer. Deciding over the whole set before removing anything
            // matters with variable ciphertext sizes, where a big newcomer
            // can need several victims of mixed next-use distances.
            let mut order: Vec<(u32, CtId)> = self
                .entries
                .iter()
                .map(|(&id, &(_, nu))| (nu, id))
                .collect();
            order.sort_unstable_by(|a, b| b.cmp(a));
            let mut freed = 0u64;
            let mut victims = Vec::new();
            for &(nu, vid) in &order {
                if self.used - freed + bytes <= self.capacity {
                    break;
                }
                if (nu, vid) < (next_use, id) {
                    return 0; // a victim is needed sooner than the incoming
                }
                freed += self.entries[&vid].0;
                victims.push(vid);
            }
            evicted = victims.len();
            for vid in victims {
                self.remove(vid);
            }
        }
        self.entries.insert(id, (bytes, next_use));
        self.used += bytes;
        evicted
    }
}

/// LRU cache over ciphertext ids (the software-managed scratchpad cache).
#[derive(Debug, Clone)]
struct CtCache {
    capacity: u64,
    used: u64,
    entries: HashMap<CtId, u64>,
    order: VecDeque<CtId>,
}

impl CtCache {
    fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Returns true (hit) if present, refreshing recency.
    fn touch(&mut self, id: CtId) -> bool {
        if self.entries.contains_key(&id) {
            if let Some(pos) = self.order.iter().position(|&x| x == id) {
                self.order.remove(pos);
            }
            self.order.push_back(id);
            true
        } else {
            false
        }
    }

    /// Drops an entry (dead-ciphertext eviction hint), freeing its bytes.
    /// Returns true if the entry was resident.
    fn remove(&mut self, id: CtId) -> bool {
        if let Some(sz) = self.entries.remove(&id) {
            self.used -= sz;
            if let Some(pos) = self.order.iter().position(|&x| x == id) {
                self.order.remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// Inserts, returning the number of LRU victims evicted to make room.
    fn insert(&mut self, id: CtId, bytes: u64) -> usize {
        if bytes > self.capacity {
            return 0; // cannot cache at all
        }
        if self.entries.contains_key(&id) {
            self.touch(id);
            return 0;
        }
        let mut evicted = 0usize;
        while self.used + bytes > self.capacity {
            let Some(victim) = self.order.pop_front() else {
                break;
            };
            if let Some(sz) = self.entries.remove(&victim) {
                self.used -= sz;
                evicted += 1;
            }
        }
        self.entries.insert(id, bytes);
        self.order.push_back(id);
        self.used += bytes;
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;
    use bts_params::BandwidthModel;

    fn hmult_trace(ins: &CkksInstance, level: usize) -> OpTrace {
        let mut b = TraceBuilder::new(ins);
        let x = b.fresh_ct(level);
        let y = b.fresh_ct(level);
        // Three multiplications on the same operands: after the first, the
        // operands are resident in the scratchpad, so compute partially hides
        // the remaining memory traffic.
        b.hmult_at(x, y, level);
        b.hmult_at(x, y, level);
        b.hmult_at(x, y, level);
        b.build()
    }

    #[test]
    fn hmult_at_top_level_is_bounded_by_evk_load() {
        // §3.3/§6.3: with everything on-chip, HMult's time equals the evk
        // streaming time (~117 µs for INS-1 at 1 TB/s) because compute hides
        // underneath it.
        let ins = CkksInstance::ins1();
        let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
        let cost = sim.op_cost(HeOp::HMult, ins.max_level());
        let evk_time = ins.evk_bytes_at_level(ins.max_level()) as f64 / 1e12;
        assert!(
            cost.compute_seconds < evk_time,
            "compute {} should hide under evk load {}",
            cost.compute_seconds,
            evk_time
        );
        // NTTU busy fraction during HMult ≈ 65-80% (Fig. 8 reports 76%).
        let busy = cost.ntt_seconds / evk_time;
        assert!(busy > 0.5 && busy < 0.95, "NTTU busy fraction = {busy}");
    }

    #[test]
    fn doubling_bandwidth_gives_sublinear_speedup() {
        // Fig. 9: the 2 TB/s configuration is only ~1.26x faster because
        // compute starts to dominate.
        let ins = CkksInstance::ins1();
        let trace = hmult_trace(&ins, ins.max_level());
        let base = Simulator::new(BtsConfig::bts_default(), ins.clone()).run(&trace);
        let fast = Simulator::new(
            BtsConfig::bts_default().with_hbm(BandwidthModel::hbm_2tb()),
            ins,
        )
        .run(&trace);
        let speedup = base.total_seconds / fast.total_seconds;
        assert!(speedup > 1.05 && speedup < 2.0, "speedup = {speedup}");
    }

    #[test]
    fn cache_hits_reduce_hbm_traffic() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(20);
        let y = b.fresh_ct(20);
        // Re-use the same operands repeatedly: the second and later ops hit.
        for _ in 0..8 {
            b.hmult_at(x, y, 20);
        }
        let trace = b.build();
        let report = Simulator::new(BtsConfig::bts_default(), ins).run(&trace);
        assert!(report.cache_hits >= 14, "hits = {}", report.cache_hits);
        assert_eq!(report.cache_misses, 2);
    }

    #[test]
    fn tiny_scratchpad_forces_ct_reloads() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let ids: Vec<_> = (0..6).map(|_| b.fresh_ct(27)).collect();
        for round in 0..3 {
            for w in ids.windows(2) {
                b.hmult_at(w[0], w[1], 27 - round);
            }
        }
        let trace = b.build();
        let small = Simulator::new(
            BtsConfig::bts_default().with_scratchpad_bytes(200 * 1024 * 1024),
            ins.clone(),
        )
        .run(&trace);
        let big = Simulator::new(
            BtsConfig::bts_default().with_scratchpad_bytes(2 * 1024 * 1024 * 1024),
            ins,
        )
        .run(&trace);
        assert!(small.ct_miss_bytes > big.ct_miss_bytes);
        assert!(small.total_seconds >= big.total_seconds);
        assert!(big.cache_hit_rate() > small.cache_hit_rate());
    }

    #[test]
    fn report_accounting_is_consistent() {
        let ins = CkksInstance::ins2();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(39);
        b.set_bootstrap_region(true);
        let y = b.hrot(x, 3, 39);
        b.set_bootstrap_region(false);
        let z = b.hmult_at(y, y, 39);
        b.hrescale_at(z, 39);
        let trace = b.build();
        let r = Simulator::new(BtsConfig::bts_default(), ins).run(&trace);
        let sum: f64 = r.per_op.values().map(|s| s.seconds).sum();
        assert!((sum - r.total_seconds).abs() < 1e-12);
        assert!(r.bootstrap_seconds < r.total_seconds);
        assert!(r.bootstrap_fraction() > 0.0);
        assert_eq!(r.hbm_bytes, r.evk_bytes + r.ct_miss_bytes);
        assert!(r.energy_j > 0.0);
        assert!(r.edap() > 0.0);
        assert!(r.scratchpad_peak_bytes > 0);
    }

    #[test]
    fn simulator_entry_point_rejects_invalid_traces() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        b.hmult(x, x);
        let mut trace = b.build();
        trace.ops[0].inputs.push(12345); // dangling id
        let sim = Simulator::new(BtsConfig::bts_default(), ins);
        assert!(sim.try_run(&trace).is_err());
        trace.ops[0].inputs.pop();
        assert!(sim.try_run(&trace).is_ok());
    }

    #[test]
    fn eviction_hints_beat_lru_when_dead_data_stays_recent() {
        use crate::trace::EvictionHints;
        // Recency and liveness disagree: every other round produces a value
        // that dies immediately (but is the most recently touched entry),
        // while a long-lived operand ages toward the LRU position. Plain LRU
        // evicts the live operand; hints evict the dead value instead.
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let hot = b.fresh_ct(27);
        for k in 0..12 {
            let t = b.fresh_ct(27);
            let p = b.hmult_at(t, t, 27); // t dies here
            let q = b.hmult_at(p, p, 27); // p dies here, recent but dead
            if k % 2 == 0 {
                b.hmult_at(q, hot, 27); // hot touched only every other round
            }
        }
        let trace = b.build();
        let sim = Simulator::new(
            BtsConfig::bts_default().with_scratchpad_bytes(384 * 1024 * 1024),
            ins,
        );
        let plain = sim.run(&trace);
        let hinted = sim
            .try_run_with_hints(&trace, &EvictionHints::from_trace(&trace))
            .unwrap();
        assert!(
            hinted.cache_hit_rate() > plain.cache_hit_rate(),
            "hinted {} should beat plain {}",
            hinted.cache_hit_rate(),
            plain.cache_hit_rate()
        );
        assert!(hinted.ct_miss_bytes < plain.ct_miss_bytes);
        assert!(hinted.total_seconds <= plain.total_seconds);
    }

    #[test]
    fn belady_matches_or_beats_lru_and_hints() {
        use crate::trace::EvictionHints;
        // The divergent-liveness shape where recency misleads LRU: Belady
        // evicts the dead-but-recent values and must do at least as well as
        // the last-use hints (which approximate the same future knowledge).
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let hot = b.fresh_ct(27);
        for k in 0..12 {
            let t = b.fresh_ct(27);
            let p = b.hmult_at(t, t, 27);
            let q = b.hmult_at(p, p, 27);
            if k % 2 == 0 {
                b.hmult_at(q, hot, 27);
            }
        }
        let trace = b.build();
        let sim = Simulator::new(
            BtsConfig::bts_default().with_scratchpad_bytes(384 * 1024 * 1024),
            ins,
        );
        let plain = sim.run(&trace);
        let hinted = sim
            .try_run_with_hints(&trace, &EvictionHints::from_trace(&trace))
            .unwrap();
        let belady = sim.try_run_belady(&trace).unwrap();
        assert!(
            belady.cache_hit_rate() > plain.cache_hit_rate(),
            "belady {} should beat LRU {}",
            belady.cache_hit_rate(),
            plain.cache_hit_rate()
        );
        assert!(belady.cache_hit_rate() >= hinted.cache_hit_rate());
        assert!(belady.total_seconds <= plain.total_seconds);
    }

    #[test]
    fn belady_bypass_decides_before_evicting() {
        // Capacity 100: residents A (60 B, next use 10) and B (40 B, next
        // use 5); incoming C (80 B, next use 7) needs both evicted, but B is
        // needed sooner than C — so C must be bypassed with *both* residents
        // kept, not A sacrificed before the bypass decision falls on B.
        let mut cache = BeladyCache::new(100);
        cache.insert(1, 60, 10); // A
        cache.insert(2, 40, 5); // B
        cache.insert(3, 80, 7); // C: bypassed
        assert!(cache.touch(1, 10), "A must survive");
        assert!(cache.touch(2, 5), "B must survive");
        assert!(!cache.touch(3, 7), "C must not be cached");
        assert_eq!(cache.used_bytes(), 100);
        // When the incoming ciphertext is needed sooner than every victim,
        // the evictions do commit.
        cache.insert(4, 80, 2);
        assert!(cache.touch(4, 2));
        assert!(!cache.touch(1, 10));
        assert!(!cache.touch(2, 5), "both residents evicted for the fit");
    }

    #[test]
    fn belady_equals_lru_when_everything_fits() {
        // With no capacity pressure no policy ever evicts, so the two sweeps
        // must agree bit-for-bit.
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        let y = b.fresh_ct(27);
        for _ in 0..5 {
            b.hmult_at(x, y, 27);
        }
        let trace = b.build();
        let sim = Simulator::new(
            BtsConfig::bts_default().with_scratchpad_bytes(4 * 1024 * 1024 * 1024),
            ins,
        );
        let lru = sim.op_timings(&trace).unwrap();
        let belady = sim.op_timings_belady(&trace).unwrap();
        assert_eq!(lru, belady);
    }

    #[test]
    fn merged_reports_sum_counters_and_weight_utilizations() {
        let ins = CkksInstance::ins1();
        let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        b.hmult(x, x);
        let t1 = b.build();
        let mut b = TraceBuilder::new(&ins);
        let y = b.fresh_ct(20);
        let r = b.hrot(y, 3, 20);
        b.hrescale_at(r, 20);
        let t2 = b.build();
        let r1 = sim.run(&t1);
        let r2 = sim.run(&t2);
        let mut merged = r1.clone();
        merged.merge(&r2);
        assert!((merged.total_seconds - (r1.total_seconds + r2.total_seconds)).abs() < 1e-15);
        assert_eq!(merged.hbm_bytes, r1.hbm_bytes + r2.hbm_bytes);
        assert_eq!(merged.cache_misses, r1.cache_misses + r2.cache_misses);
        assert!((merged.energy_j - (r1.energy_j + r2.energy_j)).abs() < 1e-12);
        let ops: usize = merged.per_op.values().map(|s| s.count).sum();
        assert_eq!(ops, t1.len() + t2.len());
        // Time-weighted utilization stays inside the two inputs' envelope.
        let lo = r1.hbm_utilization.min(r2.hbm_utilization);
        let hi = r1.hbm_utilization.max(r2.hbm_utilization);
        assert!(merged.hbm_utilization >= lo - 1e-12 && merged.hbm_utilization <= hi + 1e-12);
        assert_eq!(merged.scheduled_seconds, None);
        assert_eq!(merged.parallel_speedup(), None);
    }

    #[test]
    fn stale_hints_are_rejected() {
        use crate::trace::{EvictionHints, TraceError};
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        b.hmult(x, x);
        let short = b.build();
        let hints = EvictionHints::from_trace(&short);
        let mut longer = short.clone();
        let mut b2 = TraceBuilder::new(&ins);
        let y = b2.fresh_ct(27);
        b2.hrot(y, 1, 27);
        longer.extend(&b2.build());
        let sim = Simulator::new(BtsConfig::bts_default(), ins);
        assert_eq!(
            sim.try_run_with_hints(&longer, &hints).err(),
            Some(TraceError::HintArityMismatch {
                hint_ops: 1,
                trace_ops: 2
            })
        );
        assert!(sim.try_run_with_hints(&short, &hints).is_ok());
    }

    #[test]
    fn single_use_outputs_are_forwarded_not_cached() {
        // rot → pmult → add: the rotation's and product's outputs each have
        // one consumer, the immediately following op, so they flow through
        // the temporary region and never count as cache accesses.
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        let mut acc = b.pmult(x, 27);
        for r in 1..4 {
            let rot = b.hrot(x, r, 27);
            let prod = b.pmult(rot, 27);
            acc = b.hadd(acc, prod, 27);
        }
        let trace = b.build();
        let sim = Simulator::new(BtsConfig::bts_default(), ins);
        let report = sim.run(&trace);
        // rot/prod intermediates are forwarded (single use, next op); x and
        // the accumulator chain are cached — only x's first access misses.
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_hits, 6);
    }

    #[test]
    fn op_timings_sum_to_the_serial_report() {
        let ins = CkksInstance::ins2();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(39);
        let y = b.hrot(x, 3, 39);
        let z = b.hmult_at(y, y, 39);
        b.hrescale_at(z, 39);
        let trace = b.build();
        let sim = Simulator::new(BtsConfig::bts_default(), ins);
        let timings = sim.op_timings(&trace).unwrap();
        let report = sim.run(&trace);
        let sum: f64 = timings.iter().map(|t| t.seconds).sum();
        assert!((sum - report.total_seconds).abs() < 1e-15);
        let hbm: u64 = timings.iter().map(|t| t.hbm_bytes).sum();
        assert_eq!(hbm, report.hbm_bytes);
        for t in &timings {
            assert!(t.cost.ntt_seconds <= t.seconds + 1e-18);
            assert!(t.cost.bconv_seconds <= t.seconds + 1e-18);
            assert!(t.cost.elementwise_charged_seconds <= t.seconds + 1e-18);
            assert!(t.hbm_seconds <= t.seconds + 1e-18);
        }
    }

    #[test]
    fn serial_reports_leave_schedule_fields_unset() {
        let ins = CkksInstance::ins1();
        let mut b = TraceBuilder::new(&ins);
        let x = b.fresh_ct(27);
        b.hmult(x, x);
        let r = Simulator::new(BtsConfig::bts_default(), ins).run(&b.build());
        assert_eq!(r.scheduled_seconds, None);
        assert_eq!(r.critical_path_seconds, None);
        assert_eq!(r.parallel_speedup(), None);
    }

    #[test]
    fn higher_level_ops_cost_more() {
        let ins = CkksInstance::ins3();
        let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
        let low = sim.op_cost(HeOp::HMult, 5);
        let high = sim.op_cost(HeOp::HMult, ins.max_level());
        assert!(high.compute_seconds > low.compute_seconds);
        assert!(high.evk_bytes > low.evk_bytes);
    }
}
