//! Reproduces the ResNet-20 row of Table 6: expresses the homomorphic
//! inference as an `HeCircuit` (with and without channel packing), lowers it
//! to an op trace and runs it through the BTS simulator for every evaluation
//! instance.
//!
//! Run with: `cargo run --release --example resnet_inference`

use bts::circuit::Workload;
use bts::params::CkksInstance;
use bts::sim::{BtsConfig, Simulator};
use bts::workloads::{ResNetConfig, ResNetWorkload};

fn main() {
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>14}",
        "Instance", "latency (s)", "bootstraps", "HBM (GB)", "boot share"
    );
    let workload = ResNetWorkload::default();
    for instance in CkksInstance::evaluation_set() {
        let lowered = workload.lower(&instance).expect("paper instances lower");
        let report = Simulator::new(BtsConfig::bts_default(), instance.clone()).run(&lowered.trace);
        println!(
            "{:<8} {:>12.2} {:>14} {:>12.1} {:>13.0}%",
            instance.name(),
            report.total_seconds,
            lowered.bootstrap_count,
            report.hbm_bytes as f64 / 1e9,
            report.bootstrap_fraction() * 100.0
        );
    }

    // The channel-packing ablation discussed in §6.3.
    let ins = CkksInstance::ins1();
    let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
    let packed = sim.run(&workload.lower(&ins).expect("packed").trace);
    let unpacked_workload = ResNetWorkload::new(ResNetConfig {
        channel_packing: false,
        ..ResNetConfig::default()
    });
    let unpacked = sim.run(&unpacked_workload.lower(&ins).expect("unpacked").trace);
    println!(
        "\nchannel packing speedup on INS-1: {:.1}× (paper attributes 17.8× to packing)",
        unpacked.total_seconds / packed.total_seconds
    );
}
