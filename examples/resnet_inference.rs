//! Reproduces the ResNet-20 row of Table 6: generates the homomorphic
//! inference op trace (with and without channel packing) and runs it through
//! the BTS simulator for every evaluation instance.
//!
//! Run with: `cargo run --release --example resnet_inference`

use bts::params::CkksInstance;
use bts::sim::{BtsConfig, Simulator};
use bts::workloads::{resnet20_trace, ResNetConfig};

fn main() {
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>14}",
        "Instance", "latency (s)", "bootstraps", "HBM (GB)", "boot share"
    );
    for instance in CkksInstance::evaluation_set() {
        let workload = resnet20_trace(&instance, ResNetConfig::default());
        let report =
            Simulator::new(BtsConfig::bts_default(), instance.clone()).run(&workload.trace);
        println!(
            "{:<8} {:>12.2} {:>14} {:>12.1} {:>13.0}%",
            instance.name(),
            report.total_seconds,
            workload.bootstrap_count,
            report.hbm_bytes as f64 / 1e9,
            report.bootstrap_fraction() * 100.0
        );
    }

    // The channel-packing ablation discussed in §6.3.
    let ins = CkksInstance::ins1();
    let sim = Simulator::new(BtsConfig::bts_default(), ins.clone());
    let packed = sim.run(&resnet20_trace(&ins, ResNetConfig::default()).trace);
    let unpacked = sim.run(
        &resnet20_trace(
            &ins,
            ResNetConfig {
                channel_packing: false,
                ..ResNetConfig::default()
            },
        )
        .trace,
    );
    println!(
        "\nchannel packing speedup on INS-1: {:.1}× (paper attributes 17.8× to packing)",
        unpacked.total_seconds / packed.total_seconds
    );
}
