//! Multi-tenant serving demo: streams a seeded batch of bootstrapping jobs
//! from three tenants through one simulated BTS accelerator, comparing
//! one-at-a-time service against co-scheduled service (ops of different jobs
//! interleaved on the NTTU/BConvU/element-wise/HBM channels by the
//! `bts-sched` multi-DAG scheduler), then the three queueing policies under
//! the same arrival stream.
//!
//! Run with: `cargo run --release --example serving_demo`
//!
//! The run records a telemetry trace (set `BTS_TRACE=path.json` to choose
//! where; defaults to `target/serving_demo.trace.json`) — load it at
//! <https://ui.perfetto.dev> to see the queue depth, admissions and per-job
//! lifecycle spans next to the functional-unit lanes.

use bts::params::{BandwidthModel, CkksInstance};
use bts::serve::{serve, QueuePolicy, ServeOptions, SyntheticArrivals};
use bts::sim::BtsConfig;
use bts::telemetry;

fn main() {
    let session = telemetry::init(
        &telemetry::TelemetryConfig::from_env().or_trace_path("target/serving_demo.trace.json"),
    );
    let ins = CkksInstance::ins1();
    // The Fig. 9 2 TB/s point: compute matters, so co-scheduling has slack
    // to reclaim (at 1 TB/s the machine is evk-streaming bound end to end).
    let config = BtsConfig::bts_default().with_hbm(BandwidthModel::hbm_2tb());

    println!(
        "=== bts-serve: one accelerator, many tenants ({}, 2 TB/s HBM) ===\n",
        ins.name()
    );

    // 1. Burst of bootstrap jobs: serial service vs co-scheduled service.
    let burst = SyntheticArrivals::burst(&ins, "bootstrap", 4);
    let serial =
        serve(&burst, ServeOptions::new(1).with_config(config.clone())).expect("INS-1 bootstraps");
    let co =
        serve(&burst, ServeOptions::new(4).with_config(config.clone())).expect("INS-1 bootstraps");
    println!("4-job bootstrap burst:");
    println!(
        "  one at a time : makespan {:>7.2} ms | {:>6.1} jobs/s | {:.2e} mult slots/s",
        serial.makespan_seconds * 1e3,
        serial.throughput_jobs_per_sec(),
        serial.mult_slots_per_sec(),
    );
    println!(
        "  co-scheduled  : makespan {:>7.2} ms | {:>6.1} jobs/s | {:.2e} mult slots/s  ({:.3}x)",
        co.makespan_seconds * 1e3,
        co.throughput_jobs_per_sec(),
        co.mult_slots_per_sec(),
        serial.makespan_seconds / co.makespan_seconds,
    );

    // 2. A sustained seeded stream across three tenants, under each policy.
    let stream = SyntheticArrivals::new(ins, 2024)
        .mean_interarrival_seconds(3e-3)
        .tenants(3)
        .mix(vec![
            ("bootstrap".to_string(), 3.0),
            ("amortized-mult".to_string(), 1.0),
        ])
        .generate(9);
    println!("\n9-job mixed stream (3 tenants, 3 ms mean interarrival, concurrency 3):");
    for policy in QueuePolicy::ALL {
        let report = serve(
            &stream,
            ServeOptions::new(3)
                .with_policy(policy)
                .with_config(config.clone()),
        )
        .expect("mixed stream serves");
        println!(
            "  {:<12} p50 {:>6.2} ms | p99 {:>6.2} ms | fairness {:.3} | co-scheduling {:.3}x",
            policy.label(),
            report.latency_percentile(50.0) * 1e3,
            report.latency_percentile(99.0) * 1e3,
            report.tenant_fairness(),
            report.coscheduling_speedup(),
        );
    }

    // 3. Per-job lifecycle under FIFO, plus the batch's aggregate work.
    let report = serve(&stream, ServeOptions::new(3).with_config(config)).expect("fifo");
    println!("\nper-job lifecycle (fifo):");
    println!(
        "  {:<4} {:<7} {:<15} {:>9} {:>9} {:>9} {:>9}",
        "job", "tenant", "workload", "arrive", "queued", "service", "latency"
    );
    for j in &report.jobs {
        println!(
            "  {:<4} {:<7} {:<15} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>7.2}ms",
            j.id,
            j.tenant,
            j.workload,
            j.arrival_seconds * 1e3,
            j.queue_seconds() * 1e3,
            j.service_seconds() * 1e3,
            j.latency_seconds() * 1e3,
        );
    }
    if let Some(agg) = &report.aggregate {
        println!(
            "\naggregate: {:.1} GB streamed from HBM, {:.2} J, {} ops across {} jobs",
            agg.hbm_bytes as f64 / 1e9,
            agg.energy_j,
            agg.per_op.values().map(|s| s.count).sum::<usize>(),
            report.job_count(),
        );
    }
    println!("{}", report.summary());

    // Export the trace and check it really is non-empty, well-formed Chrome
    // trace JSON before pointing anyone at it.
    let summary = session.finish().expect("trace export writes");
    let trace = summary.trace.expect("a trace path is always configured");
    let text = std::fs::read_to_string(&trace.path).expect("trace file readable");
    assert!(!text.is_empty(), "trace must not be empty");
    let check = telemetry::validate_chrome_trace(&text).expect("trace must be schema-valid");
    assert!(check.events > 0, "trace must record events");
    println!(
        "\ntelemetry: {} events on {} tracks across {} processes -> {} (open in https://ui.perfetto.dev)",
        check.events,
        check.tracks,
        check.processes,
        trace.path.display(),
    );
}
