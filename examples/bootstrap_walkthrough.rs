//! Bootstrapping walkthrough: runs the full CKKS bootstrapping pipeline
//! (ModRaise → CoeffToSlot → EvalMod → SlotToCoeff) on a toy ring and prints
//! what happens to the ciphertext level and to the message precision at each
//! stage — the software-side view of the operation BTS accelerates as a
//! first-class citizen.
//!
//! Run with: `cargo run --release --example bootstrap_walkthrough`

use bts::ckks::{BootstrapConfig, Bootstrapper, CkksContext, Complex, NoiseTracker, SineEvaluator};
use bts::params::CkksInstance;
use rand::SeedableRng;

fn max_error(a: &[Complex], b: &[Complex]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.re - y.re).abs())
        .fold(0.0, f64::max)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // A toy ring that is deep enough to bootstrap: 52 levels, 40-bit scale,
    // 45-bit q0 (the small q0/Δ ratio keeps the EvalMod amplitude small).
    let degree = 1 << 7;
    let ctx = CkksContext::new(degree, 52, 1, 45, 40, 60)?;
    let config = BootstrapConfig::functional_test();
    println!("== Functional bootstrapping on a toy ring ==");
    println!(
        "N = {}, L = {}, Δ = 2^{}, q0/Δ = 2^5, EvalMod degree {} on [-{}, {}]",
        ctx.degree(),
        ctx.max_level(),
        ctx.scale().log2(),
        config.evalmod_degree,
        config.range_k,
        config.range_k,
    );

    // Sparse secret: keeps the ModRaise overflow |I| within the EvalMod range.
    let sk = ctx.gen_sparse_secret_key(&mut rng, 4);
    let mut keys = ctx.generate_bundle_for(&sk, &mut rng)?;
    keys.set_conjugation(ctx.gen_conjugation_key(&sk, &mut rng)?);
    let bootstrapper = Bootstrapper::new(&ctx, config)?;
    let rotations = bootstrapper.required_rotations();
    println!(
        "rotation keys required by CoeffToSlot/SlotToCoeff: {}",
        rotations.len()
    );
    for r in &rotations {
        keys.insert_rotation(*r, ctx.gen_rotation_key(&sk, *r, &mut rng)?);
    }
    let eval = ctx.evaluator(&keys);

    // Encrypt a message at level 0: no multiplications are possible any more.
    let msg: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(0.3 * (i as f64 * 0.29).sin(), 0.0))
        .collect();
    let exhausted = ctx.encrypt(&ctx.encode_at(&msg, 0, ctx.scale())?, &sk, &mut rng)?;
    println!("\nexhausted ciphertext: level {}", exhausted.level());

    // Step 1: ModRaise.
    let raised = bootstrapper.mod_raise(&ctx, &exhausted);
    println!("after ModRaise:       level {}", raised.level());

    // Full pipeline.
    let refreshed = bootstrapper.bootstrap(&eval, &exhausted)?;
    let out = ctx.decode(&ctx.decrypt(&refreshed, &sk)?)?;
    println!(
        "after bootstrapping:  level {} (levels recovered for {} more multiplications)",
        refreshed.level(),
        refreshed.level()
    );
    println!(
        "message error after refresh: {:.2e} (≈ {:.1} bits of precision)",
        max_error(&msg, &out),
        -max_error(&msg, &out).log2()
    );

    // The production-style double-angle sine evaluator: same job as the
    // direct Chebyshev EvalMod, far fewer levels for wide overflow ranges.
    println!("\n== Double-angle EvalMod (Han–Ki style) ==");
    for (range, degree, doublings) in [(6.0, 15, 3u32), (12.0, 23, 4), (25.0, 31, 5)] {
        let sine = SineEvaluator::new(range, degree, doublings, 1.0);
        println!(
            "range ±{range:>4}: Chebyshev degree {degree:>2} + {doublings} double angles \
             → {:>2} levels, max error {:.1e}",
            sine.levels_consumed(),
            sine.max_error(2000)
        );
    }

    // Analytical noise budget on the paper-scale instance for comparison.
    println!("\n== Analytical precision budget (INS-1, N = 2^17) ==");
    let ins = CkksInstance::ins1();
    for depth in [0usize, 4, 8] {
        println!(
            "precision after {depth} multiplicative levels: {:.1} bits",
            NoiseTracker::precision_after_depth(&ins, depth)
        );
    }
    Ok(())
}
