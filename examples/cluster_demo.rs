//! Cluster serving demo: streams one seeded batch of jobs from three tenants
//! through two different fleets — two BTS chips vs four FAB chips — behind
//! tenant-affinity placement and an NVLink-class fabric, then shows what the
//! placement policy is worth on the BTS fleet.
//!
//! A single chip at 1 TB/s is evaluation-key-streaming bound, so a
//! bootstrapping service scales out, not up: the cluster layer charges every
//! ciphertext (and the first copy of each tenant's ~10 GiB evk set per chip)
//! that crosses the interconnect, which is why placement matters.
//!
//! Run with: `cargo run --release --example cluster_demo`
//!
//! Pass `--kill-chip N` to also inject a chip failure into a 4-chip BTS
//! fleet halfway through the run: chip N dies, its queued and in-flight
//! jobs migrate to the survivors (paying the wire again after backoff), and
//! the resilience summary shows goodput degrading gracefully instead of
//! collapsing.
//!
//! The run records a telemetry trace (set `BTS_TRACE=path.json` to choose
//! where; defaults to `target/cluster_demo.trace.json`) — load it at
//! <https://ui.perfetto.dev> to see per-chip functional-unit lanes, queue
//! depths, interconnect transfers and (with `--kill-chip`) the
//! `chip-failure`/`migrate` fault instants.

use bts::cluster::{
    serve_cluster, ChipSpec, ClusterOptions, FaultPlan, Interconnect, PlacementPolicy,
};
use bts::params::CkksInstance;
use bts::serve::SyntheticArrivals;
use bts::sim::ArchPreset;
use bts::telemetry;

fn main() {
    let mut kill_chip: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--kill-chip" => {
                let Some(chip) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--kill-chip needs a chip index");
                    std::process::exit(1);
                };
                kill_chip = Some(chip);
            }
            other => {
                eprintln!("unknown argument '{other}' (usage: cluster_demo [--kill-chip N])");
                std::process::exit(1);
            }
        }
    }
    let session = telemetry::init(
        &telemetry::TelemetryConfig::from_env().or_trace_path("target/cluster_demo.trace.json"),
    );
    let ins = CkksInstance::ins1();
    // 12 jobs from 3 tenants: mostly bootstrap refreshes with some amortized
    // multiplication batches mixed in, arriving every ~4 ms.
    let stream = SyntheticArrivals::new(ins, 2024)
        .mean_interarrival_seconds(4e-3)
        .tenants(3)
        .mix(vec![
            ("bootstrap".to_string(), 3.0),
            ("amortized-mult".to_string(), 1.0),
        ])
        .generate(12);

    println!("=== bts-cluster: one job stream, two fleets (INS-1) ===\n");

    // 1. BTS x2 vs FAB x4, side by side, on the same stream.
    let fleets = [
        ChipSpec::preset(ArchPreset::Bts, 2).with_interconnect(Interconnect::nvlink_class()),
        ChipSpec::preset(ArchPreset::Fab, 4).with_interconnect(Interconnect::nvlink_class()),
    ];
    for spec in fleets {
        let report = serve_cluster(
            &stream,
            ClusterOptions::new(spec).with_placement(PlacementPolicy::TenantAffinity),
        )
        .expect("the stream serves on every fleet");
        println!("{}", report.summary());
        println!(
            "  {:<4} {:<7} {:<15} {:>5} {:>9} {:>9} {:>9}",
            "job", "tenant", "workload", "chip", "arrive", "wire", "latency"
        );
        for j in &report.jobs {
            println!(
                "  {:<4} {:<7} {:<15} {:>5} {:>7.2}ms {:>7.2}ms {:>7.2}ms",
                j.id,
                j.tenant,
                j.workload,
                j.chip,
                j.arrival_seconds * 1e3,
                j.transfer_seconds * 1e3,
                j.latency_seconds() * 1e3,
            );
        }
        println!();
    }

    // 2. What placement buys on the BTS x2 fleet: pinning a tenant's keys to
    // one chip versus spreading its jobs (and re-shipping its keys).
    println!("placement policies on BTS x2 (same stream):");
    let spec = ChipSpec::preset(ArchPreset::Bts, 2).with_interconnect(Interconnect::nvlink_class());
    for placement in PlacementPolicy::ALL {
        let report = serve_cluster(
            &stream,
            ClusterOptions::new(spec.clone()).with_placement(placement),
        )
        .expect("the stream serves under every placement");
        println!(
            "  {:<16} {:>6.1} jobs/s | moved {:>6.2} GiB | p99 {:>7.2} ms | fairness {:.3}",
            placement.label(),
            report.throughput_jobs_per_sec(),
            report.interconnect_bytes() as f64 / (1u64 << 30) as f64,
            report.latency_percentile(99.0) * 1e3,
            report.tenant_fairness(),
        );
    }

    // 3. Optional failover drill: kill one chip of a BTS x4 fleet halfway
    // through the healthy run and watch the fleet degrade gracefully.
    if let Some(chip) = kill_chip {
        let spec =
            ChipSpec::preset(ArchPreset::Bts, 4).with_interconnect(Interconnect::nvlink_class());
        let options =
            || ClusterOptions::new(spec.clone()).with_placement(PlacementPolicy::TenantAffinity);
        let healthy = serve_cluster(&stream, options()).expect("the healthy fleet serves");
        let kill_at = healthy.makespan_seconds() * 0.5;
        let wounded = serve_cluster(
            &stream,
            options().with_fault_plan(FaultPlan::none().with_chip_failure(chip, kill_at)),
        )
        .expect("the wounded fleet still serves");
        println!(
            "\nfailover drill: BTS x4, chip {chip} dies at {:.2} ms",
            kill_at * 1e3
        );
        println!("{}", wounded.summary());
        println!(
            "  goodput {:.1} -> {:.1} jobs/s ({:.0}% of healthy); {} migrated, {} shed",
            healthy.goodput_jobs_per_sec(),
            wounded.goodput_jobs_per_sec(),
            100.0 * wounded.goodput_jobs_per_sec() / healthy.goodput_jobs_per_sec(),
            wounded.migration_count(),
            wounded.shed_count(),
        );
    }

    // Export the trace and prove it is what we claim: well-formed Chrome
    // trace JSON with at least the per-chip unit lanes, the queue/admission
    // lanes and the interconnect lane.
    let summary = session.finish().expect("trace export writes");
    let trace = summary.trace.expect("a trace path is always configured");
    let text = std::fs::read_to_string(&trace.path).expect("trace file readable");
    assert!(!text.is_empty(), "trace must not be empty");
    let check = telemetry::validate_chrome_trace(&text).expect("trace must be schema-valid");
    assert!(
        check.tracks >= 3,
        "expected >= 3 distinct tracks, got {}",
        check.tracks
    );
    println!(
        "\ntelemetry: {} events on {} tracks across {} processes -> {} (open in https://ui.perfetto.dev)",
        check.events,
        check.tracks,
        check.processes,
        trace.path.display(),
    );
}
