//! Microarchitecture report: prints the BTS hardware-design quantities the
//! paper derives in §4–§5 — the minimum NTTU count of Eq. 10, the 3D-NTT
//! epoch schedule and its inter-PE exchange volumes, the crossbar NoC
//! bandwidths, the twiddle-factor storage with on-the-fly twiddling, the
//! per-PE scratchpad allocation plan, and the function-level schedule of one
//! HMult key-switch (the Fig. 8 timeline) — for all three Table 4 instances.
//!
//! Run with: `cargo run --release --example microarchitecture_report`

use bts::math::{Ntt3dPlan, TransposePhase};
use bts::params::{min_nttu_count, BandwidthModel, CkksInstance};
use bts::sim::{
    AllocationPlan, BtsConfig, F1Model, FunctionalUnit, KeySwitchSchedule, PeMemNoc, PePeNoc,
    ProcessingElement, TwiddleStorage,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = BtsConfig::bts_default();
    let pe = ProcessingElement::bts_default();
    let noc = PePeNoc::bts_default();
    let mem = PeMemNoc::bts_default();

    println!("== PE array and NoC (N = 2^17, 64×32 grid) ==");
    let plan = Ntt3dPlan::bts_default(1 << 17)?;
    let (local, vertical, horizontal) = plan.stage_split();
    println!(
        "3D-NTT stage split: {local} local + {vertical} vertical + {horizontal} horizontal \
         stages, epoch = {} cycles",
        plan.epoch_cycles()
    );
    println!(
        "transpose volume per PE: vertical {} words, horizontal {} words (hidden: {})",
        plan.exchange_words_per_pe(TransposePhase::Vertical),
        plan.exchange_words_per_pe(TransposePhase::Horizontal),
        noc.transposes_hidden(&plan)
    );
    println!(
        "PE-PE NoC bisection bandwidth: {:.1} TB/s; PE-Mem regions: {} × {} PEs",
        noc.bisection_bytes_per_sec() / 1e12,
        mem.regions(),
        mem.pes_per_region()
    );
    println!(
        "minimum NTTU count (Eq. 10, INS-1 @ 1 TB/s): {:.0}  → BTS provisions {}",
        min_nttu_count(
            &CkksInstance::ins1(),
            config.frequency_hz,
            BandwidthModel::hbm_1tb()
        ),
        config.pe_count
    );

    println!("\n== Twiddle-factor storage with on-the-fly twiddling ==");
    for ins in CkksInstance::evaluation_set() {
        let tw = TwiddleStorage::for_instance(&ins);
        println!(
            "{:>5}: full tables {:>4} MiB → OT tables {:>5.2} MiB ({}x smaller), \
             {}-word broadcast per epoch",
            ins.name(),
            tw.full_table_bytes() / (1024 * 1024),
            tw.ot_table_bytes() as f64 / (1024.0 * 1024.0),
            tw.reduction_factor() as u64,
            tw.broadcast_words_per_epoch()
        );
    }

    println!("\n== Scratchpad allocation (512 MiB, §5.3 priority) ==");
    for ins in CkksInstance::evaluation_set() {
        let alloc = AllocationPlan::for_keyswitch(&config, &ins, ins.max_level());
        println!(
            "{:>5}: temporaries {:>4} MiB, evk buffer {:>3} MiB, ct cache {:>4} MiB \
             (≈ {} resident ciphertexts)",
            ins.name(),
            alloc.temporary / (1024 * 1024),
            alloc.evk_buffer / (1024 * 1024),
            alloc.ct_cache / (1024 * 1024),
            alloc.resident_cts(&ins)
        );
    }

    println!("\n== HMult key-switch schedule at the top level (Fig. 8) ==");
    for ins in CkksInstance::evaluation_set() {
        let sched = KeySwitchSchedule::build(&config, &ins, ins.max_level(), true);
        println!(
            "{:>5}: latency {:>7.1} µs ({}), NTTU busy {:>4.0}%, BConvU busy {:>4.0}%, \
             evk stream {:>6.1} µs",
            ins.name(),
            sched.latency * 1e6,
            if sched.is_memory_bound() {
                "memory-bound"
            } else {
                "compute-bound"
            },
            sched.utilization(FunctionalUnit::Nttu) * 100.0,
            sched.utilization(FunctionalUnit::BconvU) * 100.0,
            sched.evk_stream_seconds * 1e6,
        );
    }
    println!(
        "BConv scratchpad-port pressure at l_sub = {}: {:.0}% of the 128-bit port",
        config.lsub,
        pe.bconv_port_pressure(
            &CkksInstance::ins1(),
            CkksInstance::ins1().max_level() + 1,
            CkksInstance::ins1().num_special()
        ) * 100.0
    );

    println!("\n== F1 / F1+ baseline models (Table 1) ==");
    for (name, model) in [("F1", F1Model::f1()), ("F1+", F1Model::f1_plus())] {
        let row = model.platform_row(name);
        println!(
            "{name:>4}: N = 2^{}, packed bootstrapping: {}, slots/bootstrap: {}, \
             FHE mult throughput ≈ {:.0}/s",
            row.log_n, row.bootstrappable, row.refreshed_slots, row.fhe_mult_throughput
        );
    }
    Ok(())
}
