//! Explores the CKKS parameter space the way §3 of the paper does: the
//! dnum ↔ L ↔ evk-size trade-off (Fig. 1) and the minimum-bound amortized
//! multiplication time per security level (Fig. 2), then prints the Eq. 10
//! minimum-NTTU count that motivates the 2,048-PE design.
//!
//! Run with: `cargo run --release --example parameter_explorer`

use bts::circuit::BootstrapPlan;
use bts::params::{
    instance_at_security, min_nttu_count, sweep_dnum, BandwidthModel, CkksInstance, MinBoundModel,
    L_BOOT,
};

fn main() {
    println!("-- Fig 1: level budget and evk size vs dnum (λ ≥ 128) --");
    for log_n in [15u32, 16, 17] {
        let points = sweep_dnum(log_n, 128.0, 60, 51);
        let first = points.first().unwrap();
        let last = points.last().unwrap();
        println!(
            "N = 2^{log_n}: dnum 1 → L = {:>3} ({:4.2} GB evk); dnum {} → L = {:>3} ({:4.2} GB evk)",
            first.max_level,
            first.evk_bytes as f64 / 1e9,
            last.dnum,
            last.max_level,
            last.evk_bytes as f64 / 1e9
        );
    }

    println!("\n-- Fig 2: min-bound T_mult,a/slot at the 128-bit frontier --");
    let plan = BootstrapPlan::paper_default();
    for (log_n, dnum) in [(16u32, 2usize), (16, 6), (17, 1), (17, 2), (17, 3), (18, 1)] {
        let Some(ins) = instance_at_security(log_n, dnum, 128.0, 60, 51, 55) else {
            println!("N=2^{log_n} dnum={dnum}: no 128-bit instance");
            continue;
        };
        if ins.max_level() <= L_BOOT {
            println!(
                "N=2^{log_n} dnum={dnum}: L = {} — cannot bootstrap",
                ins.max_level()
            );
            continue;
        }
        let model = MinBoundModel::new(ins.clone(), BandwidthModel::hbm_1tb());
        let t = model.amortized_mult_per_slot_from_trace(&plan.keyswitch_histogram(&ins));
        println!(
            "N=2^{log_n} dnum={dnum}: L = {:>3}, λ = {:>5.1}, T_mult,a/slot = {:>7.1} ns",
            ins.max_level(),
            ins.security_level(),
            t * 1e9
        );
    }

    println!("\n-- Eq. 10: minimum NTTU count --");
    for ins in CkksInstance::evaluation_set() {
        println!(
            "{}: minNTTU = {:.0} (BTS provisions 2,048)",
            ins.name(),
            min_nttu_count(&ins, 1.2e9, BandwidthModel::hbm_1tb())
        );
    }
}
