//! Simulates one CKKS bootstrapping and the amortized-mult microbenchmark on
//! the BTS accelerator model for the three Table 4 instances, printing the
//! per-op breakdown and the headline `T_mult,a/slot`. Both workloads travel
//! the circuit pipeline: `CkksInstance → Workload → HeCircuit → TraceBackend
//! → Simulator`.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use bts::circuit::Workload;
use bts::params::CkksInstance;
use bts::sim::{BtsConfig, Simulator};
use bts::workloads::{amortized_mult_per_slot, BootstrapWorkload};

fn main() {
    for instance in CkksInstance::evaluation_set() {
        let config = BtsConfig::bts_default();
        let sim = Simulator::new(config, instance.clone());

        let lowered = BootstrapWorkload
            .lower(&instance)
            .expect("paper instances can bootstrap");
        let boot_report = sim.run(&lowered.trace);
        println!(
            "=== {} (N = 2^{}, L = {}, dnum = {}) ===",
            instance.name(),
            instance.log_n(),
            instance.max_level(),
            instance.dnum()
        );
        println!(
            "bootstrapping: {:.2} ms over {} ops ({} key-switches), {:.1} GB streamed from HBM",
            boot_report.total_seconds * 1e3,
            lowered.trace.len(),
            lowered.trace.key_switch_count(),
            boot_report.hbm_bytes as f64 / 1e9
        );
        for (op, stats) in &boot_report.per_op {
            println!(
                "  {:<10?} {:>5} ops, {:>8.2} ms",
                op,
                stats.count,
                stats.seconds * 1e3
            );
        }

        let (t_mult, report) = amortized_mult_per_slot(&sim);
        println!(
            "T_mult,a/slot = {:.1} ns | NTTU util {:.0}% | HBM util {:.0}% | ct-cache hit rate {:.0}%\n",
            t_mult * 1e9,
            report.ntt_utilization * 100.0,
            report.hbm_utilization * 100.0,
            report.cache_hit_rate() * 100.0
        );
    }
}
