//! Simulates one CKKS bootstrapping and the amortized-mult microbenchmark on
//! the BTS accelerator model for the three Table 4 instances, printing the
//! per-op breakdown, the headline `T_mult,a/slot`, and the serial-vs-scheduled
//! comparison of the `bts-sched` dependency-aware scheduler. Both workloads
//! travel the circuit pipeline: `CkksInstance → Workload → HeCircuit →
//! TraceBackend → Simulator` — with the trace either charged serially
//! (`Simulator::run`) or executed as a DAG over the functional units
//! (`run_scheduled`).
//!
//! Run with: `cargo run --release --example accelerator_sim`

use bts::circuit::Workload;
use bts::params::CkksInstance;
use bts::sched::ScheduleExt;
use bts::sim::{BtsConfig, Simulator};
use bts::workloads::{amortized_mult_per_slot, BootstrapWorkload};

fn main() {
    for instance in CkksInstance::evaluation_set() {
        let config = BtsConfig::bts_default();
        let sim = Simulator::new(config, instance.clone());

        let lowered = BootstrapWorkload
            .lower(&instance)
            .expect("paper instances can bootstrap");
        let boot_report = sim.run(&lowered.trace);
        println!(
            "=== {} (N = 2^{}, L = {}, dnum = {}) ===",
            instance.name(),
            instance.log_n(),
            instance.max_level(),
            instance.dnum()
        );
        println!(
            "bootstrapping: {:.2} ms over {} ops ({} key-switches), {:.1} GB streamed from HBM",
            boot_report.total_seconds * 1e3,
            lowered.trace.len(),
            lowered.trace.key_switch_count(),
            boot_report.hbm_bytes as f64 / 1e9
        );
        for (op, stats) in &boot_report.per_op {
            println!(
                "  {:<10?} {:>5} ops, {:>8.2} ms",
                op,
                stats.count,
                stats.seconds * 1e3
            );
        }

        // Dependency-aware schedule of the same trace: independent BSGS
        // rotations overlap, rescales slide under neighbouring evk streams.
        let run = sim.run_scheduled(&lowered.trace);
        println!(
            "scheduled: {:.2} ms (critical path {:.2} ms) — speedup {:.3}x over serial",
            run.schedule.makespan_seconds * 1e3,
            run.schedule.critical_path_seconds * 1e3,
            run.report.parallel_speedup().expect("scheduled run"),
        );
        println!("top critical-path ops (what a latency optimization must attack):");
        for c in run.top_critical_ops(3) {
            println!(
                "  #{:<5} {:<10?} at level {:<3} {:>8.1} µs",
                c.index,
                c.op,
                c.level,
                c.seconds * 1e6
            );
        }

        let (t_mult, report) = amortized_mult_per_slot(&sim);
        println!(
            "T_mult,a/slot = {:.1} ns | NTTU util {:.0}% | HBM util {:.0}% | ct-cache hit rate {:.0}%\n",
            t_mult * 1e9,
            report.ntt_utilization * 100.0,
            report.hbm_utilization * 100.0,
            report.cache_hit_rate() * 100.0
        );
    }
}
