//! Quickstart: encrypt two real vectors, compute `x·y + x` homomorphically,
//! rotate the result, and decrypt.
//!
//! Run with: `cargo run --release --example quickstart`

use bts::ckks::{CkksContext, Complex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::thread_rng();

    // A toy (insecure) parameter set: N = 2^12, 6 levels, dnum = 2.
    let ctx = CkksContext::new_toy(1 << 12, 6, 2)?;
    println!(
        "CKKS context: N = {}, slots = {}, L = {}, dnum = {}, Δ = 2^{}",
        ctx.degree(),
        ctx.slots(),
        ctx.max_level(),
        ctx.dnum(),
        ctx.scale().log2()
    );

    let (sk, mut keys) = ctx.generate_keys(&mut rng)?;
    ctx.add_rotation_keys(&sk, &mut keys, &[1], &mut rng)?;
    let eval = ctx.evaluator(&keys);

    // Encode and encrypt two messages.
    let x: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new((i as f64 / 100.0).sin(), 0.0))
        .collect();
    let y: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(0.5 + (i % 7) as f64 * 0.1, 0.0))
        .collect();
    let ct_x = ctx.encrypt(&ctx.encode(&x)?, &sk, &mut rng)?;
    let ct_y = ctx.encrypt_public(&ctx.encode(&y)?, &keys, &mut rng)?;

    // x*y + x, then rotate by one slot.
    let prod = eval.mul_rescale(&ct_x, &ct_y)?;
    let x_aligned = eval.level_reduce(&ct_x, prod.level())?;
    let sum = eval.add(&prod, &eval.rescale(&eval.mul_const(&x_aligned, 1.0)?)?)?;
    let rotated = eval.rotate(&sum, 1)?;

    let decoded = ctx.decode(&ctx.decrypt(&rotated, &sk)?)?;
    let expected = |i: usize| {
        let j = (i + 1) % x.len();
        x[j].re * y[j].re + x[j].re
    };
    let max_err = (0..8)
        .map(|i| (decoded[i].re - expected(i)).abs())
        .fold(0.0f64, f64::max);
    println!(
        "slot 0..4 decrypted: {:?}",
        &decoded[..4].iter().map(|c| c.re).collect::<Vec<_>>()
    );
    println!("max error over first 8 slots: {max_err:.2e}");
    assert!(max_err < 1e-2, "unexpectedly large error");
    println!("ok: homomorphic x*y + x (rotated) matches the plaintext computation");
    Ok(())
}
