//! A miniature end-to-end HELR-style workload: trains one logistic-regression
//! step on encrypted data with the functional CKKS library (toy ring), then
//! projects the full 1,024-image × 30-iteration training run onto the BTS
//! accelerator model (Table 5).
//!
//! Run with: `cargo run --release --example encrypted_logistic_regression`

use bts::circuit::Workload;
use bts::ckks::{CkksContext, Complex};
use bts::params::CkksInstance;
use bts::sim::{BtsConfig, Simulator};
use bts::workloads::{BaselineSet, HelrWorkload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Functional part: one encrypted gradient step on toy parameters ----
    let mut rng = rand::thread_rng();
    let ctx = CkksContext::new_toy(1 << 11, 8, 2)?;
    let (sk, mut keys) = ctx.generate_keys(&mut rng)?;
    ctx.add_rotation_keys(&sk, &mut keys, &[1, 2, 4, 8], &mut rng)?;
    let eval = ctx.evaluator(&keys);

    // 16 features per sample, packed one sample per 16 slots.
    let features = 16usize;
    let samples = ctx.slots() / features;
    let x: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(((i * 37 % 100) as f64) / 100.0 - 0.5, 0.0))
        .collect();
    let w: Vec<Complex> = (0..ctx.slots())
        .map(|i| Complex::new(0.1 + (i % features) as f64 * 0.01, 0.0))
        .collect();
    let ct_x = ctx.encrypt(&ctx.encode(&x)?, &sk, &mut rng)?;
    let pt_w = ctx.encode(&w)?;

    // Inner product per sample: multiply then rotate-and-accumulate log2(16) times.
    let mut acc = eval.rescale(&eval.mul_plain(&ct_x, &pt_w)?)?;
    for shift in [1i64, 2, 4, 8] {
        let rotated = eval.rotate(&acc, shift)?;
        acc = eval.add(&acc, &rotated)?;
    }
    // Degree-3 sigmoid approximation σ(t) ≈ 0.5 + 0.15·t - 0.0015·t³.
    let sigmoid = eval.eval_polynomial(&acc, &[0.5, 0.15, 0.0, -0.0015])?;
    let decoded = ctx.decode(&ctx.decrypt(&sigmoid, &sk)?)?;

    // Verify against the plaintext computation for the first few samples.
    let mut max_err = 0.0f64;
    for s in 0..4.min(samples) {
        let dot: f64 = (0..features)
            .map(|f| x[s * features + f].re * w[s * features + f].re)
            .sum();
        let expect = 0.5 + 0.15 * dot - 0.0015 * dot.powi(3);
        let got = decoded[s * features].re;
        max_err = max_err.max((got - expect).abs());
        println!("sample {s}: encrypted σ(x·w) = {got:.5}, plaintext = {expect:.5}");
    }
    assert!(max_err < 1e-2, "error too large: {max_err}");

    // ---- Accelerator part: the full HELR training run on BTS ----
    println!("\nProjected HELR training (1,024 MNIST images × 30 iterations) on BTS:");
    let lattigo = BaselineSet::paper()
        .get("Lattigo")
        .and_then(|b| b.helr_ms_per_iter)
        .unwrap_or(1235.0);
    for instance in CkksInstance::evaluation_set() {
        let lowered = HelrWorkload::default()
            .lower(&instance)
            .expect("paper instances lower");
        let report = Simulator::new(BtsConfig::bts_default(), instance.clone()).run(&lowered.trace);
        let ms_per_iter = report.total_seconds * 1e3 / 30.0;
        println!(
            "  {:<6}: {:>6.1} ms/iter, {:>3} bootstraps, {:>5.0}× faster than the Lattigo CPU baseline",
            instance.name(),
            ms_per_iter,
            lowered.bootstrap_count,
            lattigo / ms_per_iter
        );
    }
    Ok(())
}
